"""Multiprocess view saturation (``jobs=N``) differential and
resilience suite.

Three-way differential: the seed per-state oracle (``batched=False``),
the serial sharded engine (``batched=True, jobs=1``) and the
multiprocess engine (``jobs=2``) must produce identical global-state
levels, identical ``T(Rk)`` sequences, and — for the two batched modes
— identical METER work counts (a worker saturates exactly the views the
serial path would have, nothing more).  Non-FCR instances must diverge
identically in all three modes.

Resilience: a killed worker surfaces as a clean
:class:`~repro.errors.CubaError` (never a mis-typed divergence), the
half-built level is rolled back by the engine's exception path, and the
broken pool is evicted so later runs lease a fresh one.
"""

import os
import signal

import pytest

from repro.errors import ContextExplosionError, CubaError
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.reach import parallel
from repro.reach.explicit import ExplicitReach
from repro.reach.witness import validate_trace
from repro.util.meter import METER

K = 2

FCR_BENCHES = smallest_per_row(lambda b: b.fcr)

METER_KEYS = (
    "explicit.expansions",
    "explicit.level_views",
    "explicit.level_unique_views",
    "explicit.context_cache_hits",
    "explicit.context_cache_misses",
)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    parallel.pool_cache_clear()


def _levels(engine, k_max):
    engine.ensure_level(k_max)
    return [engine.states_new_at(k) for k in range(k_max + 1)]


class TestThreeWayDifferential:
    @pytest.mark.parametrize("bench", FCR_BENCHES, ids=lambda b: b.row)
    def test_registry_rows(self, bench):
        cpds, _prop = bench.build()
        per_state = ExplicitReach(cpds, track_traces=False, batched=False)
        serial = ExplicitReach(cpds, track_traces=False, batched=True, jobs=1)
        par = ExplicitReach(cpds, track_traces=False, batched=True, jobs=2)
        assert _levels(per_state, K) == _levels(serial, K) == _levels(par, K)
        for k in range(K + 1):
            assert (
                per_state.visible_new_at(k)
                == serial.visible_new_at(k)
                == par.visible_new_at(k)
            ), f"k={k}"

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized(self, seed):
        """Randomized CPDSs: all three modes agree level for level;
        divergent (non-FCR) instances diverge in every mode."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=5)
        cpds = random_cpds(seed, spec)
        engines = [
            ExplicitReach(
                cpds, max_states_per_context=300, track_traces=False, batched=False
            ),
            ExplicitReach(
                cpds, max_states_per_context=300, track_traces=False, jobs=1
            ),
            ExplicitReach(
                cpds, max_states_per_context=300, track_traces=False, jobs=2
            ),
        ]
        exploded = []
        for engine in engines:
            try:
                engine.ensure_level(K)
                exploded.append(False)
            except ContextExplosionError:
                exploded.append(True)
        assert exploded[0] == exploded[1] == exploded[2], (
            f"seed {seed}: divergence disagrees across modes: {exploded}"
        )
        if exploded[0]:
            return
        for k in range(K + 1):
            assert (
                engines[0].states_new_at(k)
                == engines[1].states_new_at(k)
                == engines[2].states_new_at(k)
            ), f"seed {seed}, k={k}"
            assert (
                engines[0].visible_new_at(k)
                == engines[1].visible_new_at(k)
                == engines[2].visible_new_at(k)
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_parallel_traces_are_real_executions(self, seed):
        """Witnesses reconstructed from worker-saturated trees replay
        against the CPDS step semantics."""
        spec = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=4)
        cpds = random_cpds(seed, spec)
        engine = ExplicitReach(cpds, max_states_per_context=300, jobs=2)
        try:
            engine.ensure_level(K)
        except ContextExplosionError:
            pytest.skip("non-FCR instance")
        for state in engine.states_up_to(K):
            validate_trace(cpds, engine.trace(state))


class TestMeterParity:
    @pytest.mark.parametrize("bench", FCR_BENCHES[:3], ids=lambda b: b.row)
    def test_jobs_preserve_every_work_counter(self, bench):
        """``jobs=N`` performs exactly the same number of saturations,
        shards and cache transitions as ``jobs=1`` — parallelism moves
        work across processes, it must not create or skip any."""
        cpds, _prop = bench.build()
        deltas = []
        for jobs in (1, 2):
            engine = ExplicitReach(cpds, track_traces=False, jobs=jobs)
            before = METER.snapshot()
            engine.ensure_level(3)
            deltas.append(METER.delta(before))
        for key in METER_KEYS:
            assert deltas[0].get(key, 0) == deltas[1].get(key, 0), key
        # And the batching invariant holds for the parallel mode too.
        assert (
            deltas[1].get("explicit.expansions", 0)
            + deltas[1].get("explicit.context_cache_hits", 0)
            == deltas[1].get("explicit.level_unique_views", 0)
        )


class TestCrashResilience:
    def test_killed_worker_surfaces_cuba_error_and_rolls_back(self):
        bench = next(b for b in FCR_BENCHES if b.row.startswith("1/"))
        cpds, _prop = bench.build()
        engine = ExplicitReach(cpds, track_traces=False, jobs=2)
        engine.advance()  # leases the pool and proves it works
        pool = engine._pool
        assert pool is not None and not pool.broken
        n_states = engine.n_states
        k_before = engine.k
        for process in list(pool._executor._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        with pytest.raises(CubaError) as err:
            engine.ensure_level(4)
        # A dead worker is an infrastructure failure, not a divergence.
        assert not isinstance(err.value, ContextExplosionError)
        assert "worker" in str(err.value)
        # The partial level was rolled back via _rollback.
        assert engine.n_states == n_states
        assert engine.k == k_before
        assert len(engine.table) == n_states
        assert sum(len(level) for level in engine.levels) == engine.n_states
        assert pool.broken

    def test_fresh_engine_recovers_after_crash(self):
        """The broken pool was evicted from the cache; the same CPDS
        leases a working replacement."""
        bench = next(b for b in FCR_BENCHES if b.row.startswith("1/"))
        cpds, _prop = bench.build()
        engine = ExplicitReach(cpds, track_traces=False, jobs=2)
        engine.advance()
        pool = engine._pool
        for process in list(pool._executor._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        with pytest.raises(CubaError):
            engine.ensure_level(4)
        retry = ExplicitReach(cpds, track_traces=False, jobs=2)
        retry.ensure_level(2)
        assert retry._pool is not pool
        oracle = ExplicitReach(cpds, track_traces=False, batched=False)
        oracle.ensure_level(2)
        assert retry.states_up_to(2) == oracle.states_up_to(2)


class TestPoolCache:
    def test_lease_reuses_and_clear_shuts_down(self):
        cpds, _prop = FCR_BENCHES[0].build()
        a = parallel.lease_pool(cpds, 100, 2)
        assert parallel.lease_pool(cpds, 100, 2) is a
        assert parallel.lease_pool(cpds, 101, 2) is not a  # distinct key
        parallel.pool_cache_clear()
        assert not parallel._POOL_CACHE
        b = parallel.lease_pool(cpds, 100, 2)
        assert b is not a
        parallel.pool_cache_clear()

    def test_lru_bound_caps_resident_pools(self):
        built = [bench.build()[0] for bench in FCR_BENCHES[:2]]
        pools = []
        for cpds in built:
            for max_states in (50, 60, 70):
                pools.append(parallel.lease_pool(cpds, max_states, 2))
        assert len(parallel._POOL_CACHE) <= parallel._POOL_CACHE_LIMIT
        parallel.pool_cache_clear()

    def test_constructor_validation(self):
        cpds, _prop = FCR_BENCHES[0].build()
        with pytest.raises(ValueError):
            ExplicitReach(cpds, jobs=0)
        with pytest.raises(ValueError):
            ExplicitReach(cpds, jobs=2, batched=False)
        with pytest.raises(ValueError):
            parallel.ViewSaturationPool(cpds, 100, 1)
