"""Exposition golden output and the parse_text inverse."""

import pytest

from repro.obs.metrics import Histograms
from repro.obs.prometheus import parse_text, render, sanitize


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize("store.busy-retries") == "store_busy_retries"

    def test_leading_digit_is_prefixed(self):
        assert sanitize("2phase") == "_2phase"


class TestRenderGolden:
    def test_golden(self):
        """Byte-exact exposition for a fixed registry — the stable
        spelling the /metrics contract promises scrapers."""
        hist = Histograms(bounds=(0.001, 0.01))
        hist.observe("service_request", 0.0004, lane="explicit")
        hist.observe("service_request", 0.0050, lane="explicit")
        hist.observe("service_request", 3.0, lane="explicit")
        counters = {"engine.runs": 2, "store.hits": 1}
        expected = "\n".join(
            [
                "# TYPE cuba_engine_runs_total counter",
                "cuba_engine_runs_total 2",
                "# TYPE cuba_store_hits_total counter",
                "cuba_store_hits_total 1",
                "# TYPE cuba_service_request_seconds histogram",
                'cuba_service_request_seconds_bucket{lane="explicit",le="0.001"} 1',
                'cuba_service_request_seconds_bucket{lane="explicit",le="0.01"} 2',
                'cuba_service_request_seconds_bucket{lane="explicit",le="+Inf"} 3',
                'cuba_service_request_seconds_sum{lane="explicit"} 3.0054',
                'cuba_service_request_seconds_count{lane="explicit"} 3',
            ]
        ) + "\n"
        assert render(counters=counters, histograms=hist) == expected

    def test_buckets_are_cumulative_and_end_at_count(self):
        hist = Histograms()
        for value in (0.0001, 0.003, 0.02, 50.0):
            hist.observe("op", value)
        samples = parse_text(render(counters={}, histograms=hist))
        buckets = samples["cuba_op_seconds_bucket"]
        ordered = sorted(
            buckets.items(),
            key=lambda item: float(dict(item[0])["le"].replace("+Inf", "inf")),
        )
        values = [value for _, value in ordered]
        assert values == sorted(values), "le buckets must be cumulative"
        assert values[-1] == 4
        assert samples["cuba_op_seconds_count"][()] == 4

    def test_label_escaping_round_trips(self):
        hist = Histograms(bounds=(1.0,))
        hist.observe("odd", 0.5, path='a"b\\c')
        samples = parse_text(render(counters={}, histograms=hist))
        labels = dict(next(iter(samples["cuba_odd_seconds_count"])))
        assert labels["path"] == 'a"b\\c'


class TestParse:
    def test_parses_counters_and_labels(self):
        text = (
            "# HELP something\n"
            "\n"
            "cuba_engine_runs_total 7\n"
            'cuba_http_request_seconds_count{route="/submit",status="200"} 3\n'
        )
        samples = parse_text(text)
        assert samples["cuba_engine_runs_total"][()] == 7
        key = (("route", "/submit"), ("status", "200"))
        assert samples["cuba_http_request_seconds_count"][key] == 3

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_text("this is not { a metric\n")

    def test_non_numeric_value_raises(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_text("cuba_engine_runs_total banana\n")

    def test_inf_value_parses(self):
        samples = parse_text("cuba_weird_total +Inf\n")
        assert samples["cuba_weird_total"][()] == float("inf")
