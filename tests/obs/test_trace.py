"""Span capture, nesting, cross-process adoption, and Chrome export."""

import json
import os
import pickle
import threading
import time

from repro.obs import trace


class TestDisabledMode:
    def test_disabled_span_is_shared_noop(self):
        a = trace.span("anything", level=1)
        b = trace.span("other")
        assert a is b is trace._NULL
        with a as handle:
            handle.set(ignored=True)
        assert trace.events() == []

    def test_enabled_flag_round_trip(self):
        assert not trace.enabled()
        trace.enable()
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()


class TestRecording:
    def test_record_shape_and_args(self):
        trace.enable()
        with trace.span("unit.phase", level=3) as timing:
            timing.set(outcome="hit")
        (record,) = trace.events()
        assert record["name"] == "unit.phase"
        assert record["args"] == {"level": 3, "outcome": "hit"}
        assert record["pid"] == os.getpid()
        assert record["tid"] == threading.get_ident()
        assert record["parent"] is None
        assert record["dur"] >= 0.0
        # Shipping across a process boundary requires plain picklable
        # dicts.
        assert pickle.loads(pickle.dumps(record)) == record

    def test_nesting_links_parent(self):
        trace.enable()
        with trace.span("outer"):
            outer_id = trace.current_id()
            with trace.span("inner"):
                assert trace.current_id() != outer_id
            with trace.span("sibling"):
                pass
        by_name = {event["name"]: event for event in trace.events()}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]

    def test_exception_still_records_and_pops(self):
        trace.enable()
        try:
            with trace.span("flaky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert trace.current_id() is None
        (record,) = trace.events()
        assert record["name"] == "flaky"

    def test_threads_do_not_nest_into_each_other(self):
        trace.enable()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with trace.span("worker.root"):
                started.set()
                release.wait(5)

        thread = threading.Thread(target=worker)
        with trace.span("main.root"):
            thread.start()
            assert started.wait(5)
            release.set()
            thread.join(5)
        by_name = {event["name"]: event for event in trace.events()}
        assert by_name["worker.root"]["parent"] is None
        assert by_name["main.root"]["parent"] is None
        assert by_name["worker.root"]["tid"] != by_name["main.root"]["tid"]

    def test_take_drains_buffer(self):
        trace.enable()
        with trace.span("once"):
            pass
        drained = trace.take()
        assert [event["name"] for event in drained] == ["once"]
        assert trace.events() == []

    def test_buffer_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr(trace, "MAX_EVENTS", 4)
        trace.enable()
        for index in range(7):
            with trace.span("flood", index=index):
                pass
        assert len(trace.events()) == 4
        assert trace.dropped == 3
        trace.clear()
        assert trace.dropped == 0


class TestAdopt:
    def make_foreign(self):
        """Simulate a worker: record nested spans and drain them."""
        trace.enable()
        with trace.span("w.outer"):
            with trace.span("w.inner"):
                pass
        return trace.take()

    def test_adopt_rebases_reparents_and_remaps(self):
        foreign = self.make_foreign()
        # Forge a foreign process clock far in the "past" and a fake pid
        # so re-basing and pid preservation are both observable.
        for event in foreign:
            event["ts"] -= 1e6
            event["pid"] = 99999
        trace.enable()
        with trace.span("dispatch"):
            parent_id = trace.current_id()
            dispatch_at = time.perf_counter()
            trace.adopt(foreign, parent=parent_id, at=dispatch_at)
        by_name = {event["name"]: event for event in trace.events()}
        outer, inner = by_name["w.outer"], by_name["w.inner"]
        # Roots hang under the dispatching span; internal links survive.
        assert outer["parent"] == by_name["dispatch"]["id"]
        assert inner["parent"] == outer["id"]
        # Re-based onto the parent clock at the dispatch timestamp.
        assert abs(outer["ts"] - dispatch_at) < 1e-6
        assert inner["ts"] >= outer["ts"]
        # Worker pid preserved, ids remapped into the local space.
        assert outer["pid"] == 99999
        local_ids = {by_name["dispatch"]["id"]}
        assert outer["id"] not in (event["id"] for event in foreign)
        assert len({event["id"] for event in trace.events()} | local_ids) == 3

    def test_adopt_empty_is_noop(self):
        assert trace.adopt([]) == []
        assert trace.events() == []


class TestChromeTrace:
    def test_schema(self):
        trace.enable()
        with trace.span("outer", lane="explicit"):
            with trace.span("inner"):
                pass
        doc = trace.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert {"name", "pid", "tid", "args"} <= set(event)
            assert "span_id" in event["args"]
            assert "parent_id" in event["args"]
        outer = next(e for e in doc["traceEvents"] if e["name"] == "outer")
        assert outer["args"]["lane"] == "explicit"
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_write_chrome_trace(self, tmp_path):
        trace.enable()
        with trace.span("solo"):
            pass
        path = trace.write_chrome_trace(tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert [e["name"] for e in loaded["traceEvents"]] == ["solo"]
