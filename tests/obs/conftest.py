"""Shared isolation for the observability tests.

Tracing is process-global module state; every test in this package
starts and ends with it disabled and empty so traced tests cannot leak
spans into each other (or into the rest of the suite).
"""

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _trace_isolation():
    trace.disable()
    trace.clear()
    yield
    trace.disable()
    trace.clear()
