"""The disabled-tracing overhead gate (CI ``obs-smoke`` lane).

Tracing must be free when off.  A direct traced-vs-untraced A/B wall
comparison of a quick engine run is too noisy to gate at the 2% level
on shared CI runners, so the gate is computed from its two stable
factors instead:

* the per-call cost of a *disabled* ``trace.span(...)`` (one module
  flag read, the shared ``_NULL`` object — microbenchmarked over many
  iterations, so the estimate is tight), and
* the number of span call sites an actual quick run passes through
  (counted by running the same workload once with tracing enabled).

Their product is the total disabled-mode cost the instrumentation adds
to that run, and it must stay under 2% of the run's untraced wall time.
"""

import time

import pytest

from repro.core.property import AlwaysSafe
from repro.cuba.lanes import run_lane
from repro.models import fig1_cpds
from repro.obs import trace

pytestmark = pytest.mark.quick


def _untraced_wall(cpds, rounds: int) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run_lane("explicit", cpds, AlwaysSafe(), max_rounds=rounds)
        best = min(best, time.perf_counter() - start)
    return best


def _span_count(cpds, rounds: int) -> int:
    trace.clear()
    trace.enable()
    try:
        run_lane("explicit", cpds, AlwaysSafe(), max_rounds=rounds)
    finally:
        trace.disable()
    return len(trace.take())


def _disabled_span_cost() -> float:
    iterations = 200_000
    span = trace.span  # the call sites' own access pattern
    start = time.perf_counter()
    for _ in range(iterations):
        with span("overhead.probe", level=1):
            pass
    return (time.perf_counter() - start) / iterations


def test_disabled_tracing_costs_under_two_percent():
    cpds = fig1_cpds()
    rounds = 5
    wall = _untraced_wall(cpds, rounds)
    spans = _span_count(cpds, rounds)
    assert spans > 0, "the quick run must actually pass span call sites"
    per_call = _disabled_span_cost()
    total_disabled_cost = per_call * spans
    budget = 0.02 * wall
    assert total_disabled_cost < budget, (
        f"{spans} disabled span call sites × {per_call * 1e9:.0f}ns "
        f"= {total_disabled_cost * 1e6:.1f}µs exceeds 2% of the "
        f"{wall * 1e3:.1f}ms untraced run ({budget * 1e6:.1f}µs)"
    )


def test_disabled_span_is_allocation_free():
    # The disabled path hands every caller the same shared object — the
    # structural guarantee behind the microbenchmark above.
    assert trace.span("a", x=1) is trace.span("b")
