"""``cuba verify --trace out.json`` writes a loadable Chrome trace."""

import json

import pytest

from repro.cli import main
from repro.cpds import format_cpds
from repro.models import fig1_cpds


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.cpds"
    path.write_text(format_cpds(fig1_cpds()))
    return str(path)


def test_verify_trace_writes_chrome_trace(fig1_file, tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(
        [
            "verify", fig1_file,
            "--lane", "explicit",
            "--property", "shared:3",
            "--max-rounds", "10",
            "--trace", str(out),
        ]
    )
    assert code == 1  # Fig. 1 reaches shared state 3: UNSAFE
    assert f"wrote trace: {out}" in capsys.readouterr().out

    doc = json.loads(out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert events, "a traced verify must record spans"
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        assert {"name", "pid", "tid", "args"} <= set(event)
    names = {event["name"] for event in events}
    assert "verify.request" in names
    assert "lane.run" in names
    assert any(name.endswith(".level") for name in names)
    # The request span wraps the run: every other span's ancestry must
    # reach it, so the export renders as one flame chart.
    by_id = {event["args"]["span_id"]: event for event in events}
    root = next(e for e in events if e["name"] == "verify.request")
    for event in events:
        cursor = event
        while cursor["args"]["parent_id"] is not None:
            cursor = by_id[cursor["args"]["parent_id"]]
        assert cursor is root


def test_untraced_verify_leaves_tracing_off(fig1_file):
    from repro.obs import trace

    main(["verify", fig1_file, "--lane", "explicit", "--max-rounds", "4"])
    assert not trace.enabled()
    assert trace.events() == []
