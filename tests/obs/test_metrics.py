"""Histogram bucketing, interpolated quantiles, and thread safety."""

import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histograms,
    quantile_from_buckets,
    timed,
)


class TestObserve:
    def test_bucket_placement(self):
        hist = Histograms(bounds=(0.001, 0.01, 0.1))
        hist.observe("op", 0.0005)   # bucket 0 (≤ 0.001)
        hist.observe("op", 0.001)    # bucket 0 (bounds are inclusive)
        hist.observe("op", 0.05)     # bucket 2
        hist.observe("op", 99.0)     # +Inf overflow
        cell = hist.snapshot()[("op", ())]
        assert cell["buckets"] == (2, 0, 1, 1)
        assert cell["count"] == 4
        assert cell["sum"] == pytest.approx(0.0515 + 99.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Histograms().observe("op", -0.001)

    def test_labels_key_distinct_cells(self):
        hist = Histograms()
        hist.observe("req", 0.01, lane="explicit")
        hist.observe("req", 0.01, lane="symbolic")
        hist.observe("req", 0.01, lane="explicit")
        snap = hist.snapshot()
        assert snap[("req", (("lane", "explicit"),))]["count"] == 2
        assert snap[("req", (("lane", "symbolic"),))]["count"] == 1

    def test_label_order_is_canonical(self):
        hist = Histograms()
        hist.observe("req", 0.01, a=1, b=2)
        hist.observe("req", 0.01, b=2, a=1)
        (cell,) = hist.snapshot().values()
        assert cell["count"] == 2

    def test_reset(self):
        hist = Histograms()
        hist.observe("op", 0.01)
        hist.reset()
        assert hist.snapshot() == {}

    def test_default_bounds_are_sorted(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert len(set(BUCKET_BOUNDS)) == len(BUCKET_BOUNDS)


class TestPercentile:
    def test_none_without_observations(self):
        assert Histograms().percentile("ghost", 0.5) is None

    def test_interpolates_within_bucket(self):
        hist = Histograms(bounds=(0.0, 1.0))
        for _ in range(100):
            hist.observe("op", 0.5)  # all land in the (0, 1] bucket
        # Median of a bucket spanning (0, 1]: linear interpolation puts
        # the 50th of 100 observations at rank 50/100 of the width.
        assert hist.percentile("op", 0.5) == pytest.approx(0.5, abs=0.02)

    def test_overflow_reports_last_finite_bound(self):
        hist = Histograms(bounds=(0.001, 0.01))
        hist.observe("op", 5.0)
        assert hist.percentile("op", 0.99) == 0.01

    def test_quantile_bounds_validated(self):
        hist = Histograms()
        hist.observe("op", 0.01)
        with pytest.raises(ValueError):
            hist.percentile("op", 1.5)

    def test_quantile_from_buckets_skips_empty_buckets(self):
        bounds = (0.001, 0.01, 0.1)
        counts = [0, 0, 10, 0]
        value = quantile_from_buckets(bounds, counts, 10, 0.5)
        assert 0.01 < value <= 0.1

    def test_p99_lands_in_tail_bucket(self):
        hist = Histograms(bounds=(0.01, 0.1, 1.0))
        for _ in range(99):
            hist.observe("op", 0.005)
        hist.observe("op", 0.5)
        assert hist.percentile("op", 0.5) <= 0.01
        assert hist.percentile("op", 0.995) > 0.1


class TestConcurrency:
    def test_storm_loses_nothing(self):
        """8 threads × 2000 observations: exact count, exact sum — the
        lock really guards the cells."""
        hist = Histograms()
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def storm(lane: str) -> None:
            barrier.wait()
            for index in range(per_thread):
                hist.observe("req", 0.001 * (index % 7), lane=lane)

        pool = [
            threading.Thread(target=storm, args=(f"lane{i % 2}",))
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(30)
        snap = hist.snapshot()
        total = sum(cell["count"] for cell in snap.values())
        assert total == threads * per_thread
        for cell in snap.values():
            assert sum(cell["buckets"]) == cell["count"]


class TestTimed:
    def test_timed_records_even_on_exception(self):
        hist = Histograms()
        with pytest.raises(RuntimeError):
            with timed("op", registry=hist, kind="x"):
                raise RuntimeError("boom")
        cell = hist.snapshot()[("op", (("kind", "x"),))]
        assert cell["count"] == 1
