"""Unit tests for the interned global-state core (``StateTable``)."""

import pytest

from repro.cpds.interning import StateTable
from repro.cpds.semantics import thread_context_post, thread_view_post
from repro.cpds.state import GlobalState
from repro.models import fig1_cpds
from repro.pds.state import EMPTY


def gs(shared, stack1, stack2):
    return GlobalState(shared, (tuple(stack1), tuple(stack2)))


class TestStateTable:
    def test_ids_are_dense_and_stable(self):
        table = StateTable(2)
        a = gs(0, [1], [4])
        b = gs(1, [2], [4])
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0  # re-intern is a lookup
        assert len(table) == 2

    def test_components_are_subinterned(self):
        table = StateTable(2)
        table.intern(gs(0, [1, 2], [4]))
        table.intern(gs(1, [1, 2], [4]))  # same stacks, new shared
        # One stack id per distinct word per thread; shared ids dense.
        assert table.stack_id(0, (1, 2)) == 0
        assert table.stack_id(1, (4,)) == 0
        assert table.shared_id(0) == 0 and table.shared_id(1) == 1

    def test_per_thread_stack_tables_are_independent(self):
        table = StateTable(2)
        wid0 = table.stack_id(0, ("x",))
        wid1 = table.stack_id(1, ("x",))
        assert wid0 == 0 and wid1 == 0
        assert table.stack(0, wid0) == ("x",) and table.stack(1, wid1) == ("x",)

    def test_decode_round_trip(self):
        table = StateTable(2)
        state = gs(3, [2], [4, 6, 6])
        sid = table.intern(state)
        assert table.state(sid) == state
        assert table.state(sid) is state  # object kept from intern
        # intern_key-created states decode structurally.
        qid, wids = table.key(sid)
        sid2 = table.intern_key(table.shared_id(0), wids)
        assert table.state(sid2) == gs(0, [2], [4, 6, 6])

    def test_visible_matches_global_state_projection(self):
        table = StateTable(2)
        for state in (gs(0, [1], [4]), gs(1, [], [4, 6]), gs(2, [2, 5], [])):
            sid = table.intern(state)
            assert table.visible(sid) == state.visible()
            assert table.visible(sid) is table.visible(sid)  # memoized

    def test_top_of_empty_stack_is_epsilon(self):
        table = StateTable(1)
        wid = table.stack_id(0, ())
        assert table.top(0, wid) is EMPTY

    def test_id_of_unknown_state(self):
        table = StateTable(2)
        table.intern(gs(0, [1], [4]))
        assert table.id_of(gs(0, [1], [4])) == 0
        assert table.id_of(gs(9, [1], [4])) is None       # unknown shared
        assert table.id_of(gs(0, [1, 1], [4])) is None    # unknown stack
        assert table.id_of(gs(0, [4], [1])) is None       # unknown combo

    def test_pack_unpack_round_trip(self):
        table = StateTable(3)
        key = table.pack(7, (1, 2, 3))
        assert table.unpack(key) == (7, (1, 2, 3))
        sid = table.intern_key(7, (1, 2, 3))
        assert table.packed_key(sid) == key
        assert table.key(sid) == (7, (1, 2, 3))

    def test_pool_growth_repacks_all_keys(self):
        """Outgrowing a component pool doubles the bit-field width and
        rewrites every stored key; ids, decode and lookup survive."""
        table = StateTable(2)
        states = [gs(s, [s], [s, s]) for s in range(4)]
        # Shrink the geometry so the test does not need 65k states.
        table._bits = 4
        table._mask = 0xF
        table._qshift = 8
        table._limit = 16
        sids = [table.intern(state) for state in states]
        era_before = table.era
        # 20 distinct shared states overflow the 4-bit field (limit 16).
        more = [gs(100 + s, [s], [s]) for s in range(20)]
        more_sids = [table.intern(state) for state in more]
        assert table.era > era_before
        assert table._bits == 8
        for state, sid in zip(states + more, sids + more_sids):
            assert table.state(sid) == state
            assert table.id_of(state) == sid
            assert table.unpack(table.packed_key(sid)) == table.key(sid)
        # Dense ids unchanged by the repack.
        assert sids == list(range(len(states)))

    def test_truncate_after_growth(self):
        table = StateTable(1)
        table._bits = 4
        table._mask = 0xF
        table._qshift = 4
        table._limit = 16
        for s in range(20):
            table.intern(gs_one(s, [s]))
        assert table.era == 1  # grew once
        table.truncate(10)
        assert len(table) == 10
        assert table.id_of(gs_one(15, [15])) is None
        # Component pools survive truncation; re-intern restores density.
        assert table.intern(gs_one(15, [15])) == 10


def gs_one(shared, stack):
    return GlobalState(shared, (tuple(stack),))


class TestThreadViewPost:
    def test_tree_matches_per_state_closure(self):
        """Replaying the array-encoded tree under a global state yields
        exactly thread_context_post of that state."""
        cpds = fig1_cpds()
        state = cpds.initial_state()
        table = StateTable(cpds.n_threads)
        sid = table.intern(state)
        qid, wids = table.key(sid)
        for index in range(cpds.n_threads):
            tree = thread_view_post(cpds, table, index, qid, wids[index])
            replayed = set()
            for eqid, ewid in zip(
                (tree.root_qid, *tree.qids), (tree.root_wid, *tree.wids)
            ):
                new_wids = wids[:index] + (ewid,) + wids[index + 1 :]
                replayed.add(table.state(table.intern_key(eqid, new_wids)))
            assert replayed == thread_context_post(cpds, state, index)

    def test_tree_csr_shape_and_bfs_order(self):
        """CSR invariants: offsets are monotone and cover every edge,
        edge e discovers node e+1, parents precede children, and every
        edge carries its witness action."""
        cpds = fig1_cpds()
        table = StateTable(cpds.n_threads)
        qid = table.shared_id(cpds.initial_shared)
        wid = table.stack_id(0, cpds.initial_stacks[0])
        tree = thread_view_post(cpds, table, 0, qid, wid)
        n_edges = len(tree.qids)
        assert (tree.root_qid, tree.root_wid) == (qid, wid)
        assert len(tree) == n_edges + 1
        assert len(tree.wids) == n_edges and len(tree.actions) == n_edges
        assert len(tree.offsets) == len(tree) + 1
        assert tree.offsets[0] == 0 and tree.offsets[-1] == n_edges
        assert all(
            tree.offsets[p] <= tree.offsets[p + 1] for p in range(len(tree))
        )
        for node in range(len(tree)):
            for edge in range(tree.offsets[node], tree.offsets[node + 1]):
                assert edge + 1 > node  # BFS: parents precede children
                assert tree.actions[edge] is not None

    def test_deltas_track_table_era(self):
        """The packed-delta cache is invalidated by a repack and stays
        consistent with the tree's id columns."""
        cpds = fig1_cpds()
        table = StateTable(cpds.n_threads)
        qid = table.shared_id(cpds.initial_shared)
        wid = table.stack_id(0, cpds.initial_stacks[0])
        tree = thread_view_post(cpds, table, 0, qid, wid)

        def decoded(deltas):
            shift = table._bits * tree.thread
            return [
                (d >> table._qshift, (d >> shift) & table._mask) for d in deltas
            ]

        before = decoded(tree.deltas(table))
        assert before == list(zip(tree.qids, tree.wids))
        assert tree.deltas(table) is tree.deltas(table)  # memoized
        old_era = table.era
        # Overflow the shared pool to force a repack.
        for extra in range(70000):
            table.shared_id(("filler", extra))
            if table.era != old_era:
                break
        assert table.era != old_era
        assert decoded(tree.deltas(table)) == list(zip(tree.qids, tree.wids))

    def test_divergence_guard(self):
        from repro.errors import ContextExplosionError
        from repro.models import fig2_cpds

        cpds = fig2_cpds()
        table = StateTable(cpds.n_threads)
        qid = table.shared_id(cpds.initial_shared)
        wid = table.stack_id(0, cpds.initial_stacks[0])
        with pytest.raises(ContextExplosionError):
            thread_view_post(cpds, table, 0, qid, wid, max_states=5)
