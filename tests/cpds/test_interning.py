"""Unit tests for the interned global-state core (``StateTable``)."""

import pytest

from repro.cpds.interning import StateTable
from repro.cpds.semantics import thread_context_post, thread_view_post
from repro.cpds.state import GlobalState
from repro.models import fig1_cpds
from repro.pds.state import EMPTY


def gs(shared, stack1, stack2):
    return GlobalState(shared, (tuple(stack1), tuple(stack2)))


class TestStateTable:
    def test_ids_are_dense_and_stable(self):
        table = StateTable(2)
        a = gs(0, [1], [4])
        b = gs(1, [2], [4])
        assert table.intern(a) == 0
        assert table.intern(b) == 1
        assert table.intern(a) == 0  # re-intern is a lookup
        assert len(table) == 2

    def test_components_are_subinterned(self):
        table = StateTable(2)
        table.intern(gs(0, [1, 2], [4]))
        table.intern(gs(1, [1, 2], [4]))  # same stacks, new shared
        # One stack id per distinct word per thread; shared ids dense.
        assert table.stack_id(0, (1, 2)) == 0
        assert table.stack_id(1, (4,)) == 0
        assert table.shared_id(0) == 0 and table.shared_id(1) == 1

    def test_per_thread_stack_tables_are_independent(self):
        table = StateTable(2)
        wid0 = table.stack_id(0, ("x",))
        wid1 = table.stack_id(1, ("x",))
        assert wid0 == 0 and wid1 == 0
        assert table.stack(0, wid0) == ("x",) and table.stack(1, wid1) == ("x",)

    def test_decode_round_trip(self):
        table = StateTable(2)
        state = gs(3, [2], [4, 6, 6])
        sid = table.intern(state)
        assert table.state(sid) == state
        assert table.state(sid) is state  # object kept from intern
        # intern_key-created states decode structurally.
        qid, wids = table.key(sid)
        sid2 = table.intern_key(table.shared_id(0), wids)
        assert table.state(sid2) == gs(0, [2], [4, 6, 6])

    def test_visible_matches_global_state_projection(self):
        table = StateTable(2)
        for state in (gs(0, [1], [4]), gs(1, [], [4, 6]), gs(2, [2, 5], [])):
            sid = table.intern(state)
            assert table.visible(sid) == state.visible()
            assert table.visible(sid) is table.visible(sid)  # memoized

    def test_top_of_empty_stack_is_epsilon(self):
        table = StateTable(1)
        wid = table.stack_id(0, ())
        assert table.top(0, wid) is EMPTY

    def test_id_of_unknown_state(self):
        table = StateTable(2)
        table.intern(gs(0, [1], [4]))
        assert table.id_of(gs(0, [1], [4])) == 0
        assert table.id_of(gs(9, [1], [4])) is None       # unknown shared
        assert table.id_of(gs(0, [1, 1], [4])) is None    # unknown stack
        assert table.id_of(gs(0, [4], [1])) is None       # unknown combo


class TestThreadViewPost:
    def test_tree_matches_per_state_closure(self):
        """Replaying the id-encoded tree under a global state yields
        exactly thread_context_post of that state."""
        cpds = fig1_cpds()
        state = cpds.initial_state()
        table = StateTable(cpds.n_threads)
        sid = table.intern(state)
        qid, wids = table.key(sid)
        for index in range(cpds.n_threads):
            tree = thread_view_post(cpds, table, index, qid, wids[index])
            replayed = set()
            for eqid, ewid, _ppos, _action in tree.entries:
                new_wids = wids[:index] + (ewid,) + wids[index + 1 :]
                replayed.add(table.state(table.intern_key(eqid, new_wids)))
            assert replayed == thread_context_post(cpds, state, index)

    def test_tree_root_and_parent_order(self):
        cpds = fig1_cpds()
        table = StateTable(cpds.n_threads)
        qid = table.shared_id(cpds.initial_shared)
        wid = table.stack_id(0, cpds.initial_stacks[0])
        tree = thread_view_post(cpds, table, 0, qid, wid)
        assert tree.entries[0] == (qid, wid, -1, None)
        for pos, (_q, _w, parent, action) in enumerate(tree.entries[1:], start=1):
            assert 0 <= parent < pos  # BFS: parents precede children
            assert action is not None

    def test_divergence_guard(self):
        from repro.errors import ContextExplosionError
        from repro.models import fig2_cpds

        cpds = fig2_cpds()
        table = StateTable(cpds.n_threads)
        qid = table.shared_id(cpds.initial_shared)
        wid = table.stack_id(0, cpds.initial_stacks[0])
        with pytest.raises(ContextExplosionError):
            thread_view_post(cpds, table, 0, qid, wid, max_states=5)
