"""Unit tests for global/visible states and the projection T."""

from repro.cpds import GlobalState, VisibleState, project
from repro.pds import EMPTY, PDSState


class TestGlobalState:
    def test_thread_view(self):
        state = GlobalState(1, ((2, 4), (6,)))
        assert state.thread(0) == PDSState(1, (2, 4))
        assert state.thread(1) == PDSState(1, (6,))

    def test_visible_projection(self):
        state = GlobalState(3, ((2, 4, 6), ()))
        assert state.visible() == VisibleState(3, (2, EMPTY))

    def test_stacks_coerced_to_tuples(self):
        state = GlobalState(0, [[1, 2], []])
        assert state.stacks == ((1, 2), ())
        assert hash(state)

    def test_max_stack_size(self):
        assert GlobalState(0, ((1, 2, 3), (4,))).max_stack_size() == 3
        assert GlobalState(0, ((), ())).max_stack_size() == 0

    def test_str(self):
        assert str(GlobalState(0, ((1,), ()))) == "⟨0|1,ε⟩"

    def test_n_threads(self):
        assert GlobalState(0, ((), (), ())).n_threads == 3


class TestVisibleState:
    def test_thread_visible(self):
        visible = VisibleState(2, (5, EMPTY))
        assert visible.thread_visible(0) == (2, 5)
        assert visible.thread_visible(1) == (2, EMPTY)

    def test_str_uses_epsilon(self):
        assert str(VisibleState(0, (1, EMPTY))) == "⟨0|1,ε⟩"

    def test_equality_hash(self):
        assert VisibleState(0, (1,)) == VisibleState(0, (1,))
        assert len({VisibleState(0, (1,)), VisibleState(0, (1,))}) == 1


class TestProject:
    def test_projects_set(self):
        states = [
            GlobalState(0, ((1, 9), (4,))),
            GlobalState(0, ((1, 8), (4,))),  # same projection
            GlobalState(1, ((2,), ())),
        ]
        assert project(states) == frozenset(
            {VisibleState(0, (1, 4)), VisibleState(1, (2, EMPTY))}
        )
