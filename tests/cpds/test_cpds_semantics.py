"""Unit tests for the CPDS container and asynchronous semantics."""

import pytest

from repro.errors import ContextExplosionError, ModelError
from repro.cpds import (
    CPDS,
    GlobalState,
    context_post,
    global_successors,
    thread_context_post,
    with_thread_state,
)
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import PDS, PDSState


class TestCPDSContainer:
    def test_fig1_shape(self):
        cpds = fig1_cpds()
        assert cpds.n_threads == 2
        assert cpds.shared_states == frozenset({0, 1, 2, 3})
        assert cpds.alphabet(0) == frozenset({1, 2})
        assert cpds.alphabet(1) == frozenset({4, 5, 6})
        assert cpds.initial_state() == GlobalState(0, ((1,), (4,)))

    def test_validate(self):
        fig1_cpds().validate()
        fig2_cpds().validate()

    def test_requires_threads(self):
        with pytest.raises(ModelError):
            CPDS([])

    def test_initial_shared_must_agree(self):
        one = PDS(initial_shared=0)
        two = PDS(initial_shared=1)
        with pytest.raises(ModelError):
            CPDS([one, two])

    def test_stack_count_must_match(self):
        pds = PDS(initial_shared=0)
        with pytest.raises(ModelError):
            CPDS([pds], initial_stacks=[(), ()])

    def test_initial_stack_symbols_checked(self):
        pds = PDS(initial_shared=0)
        with pytest.raises(ModelError):
            CPDS([pds], initial_stacks=[("zz",)])


class TestGlobalSuccessors:
    def test_fig1_initial_successors(self):
        cpds = fig1_cpds()
        moves = {
            (thread, action.label, str(state))
            for thread, action, state in global_successors(cpds, cpds.initial_state())
        }
        assert moves == {
            (0, "f1", "⟨1|2,4⟩"),
            (1, "b1", "⟨0|1,ε⟩"),
        }

    def test_with_thread_state(self):
        state = GlobalState(0, ((1,), (4,)))
        updated = with_thread_state(state, 1, PDSState(2, (5,)))
        assert updated == GlobalState(2, ((1,), (5,)))


class TestThreadContextPost:
    def test_zero_steps_included(self):
        cpds = fig1_cpds()
        initial = cpds.initial_state()
        assert initial in thread_context_post(cpds, initial, 0)

    def test_thread1_context_from_initial(self):
        cpds = fig1_cpds()
        reached = thread_context_post(cpds, cpds.initial_state(), 0)
        assert reached == {
            GlobalState(0, ((1,), (4,))),
            GlobalState(1, ((2,), (4,))),
        }

    def test_thread2_runs_to_completion(self):
        # From ⟨3|2,46⟩ thread 1 fires f2 then f1 — one context, two steps.
        cpds = fig1_cpds()
        start = GlobalState(3, ((2,), (4, 6)))
        reached = thread_context_post(cpds, start, 0)
        assert reached == {
            start,
            GlobalState(0, ((1,), (4, 6))),
            GlobalState(1, ((2,), (4, 6))),
        }

    def test_context_post_unions_threads(self):
        cpds = fig1_cpds()
        both = context_post(cpds, cpds.initial_state())
        assert GlobalState(1, ((2,), (4,))) in both
        assert GlobalState(0, ((1,), ())) in both
        assert len(both) == 3

    def test_parents_recorded(self):
        cpds = fig1_cpds()
        parents = {cpds.initial_state(): None}
        thread_context_post(cpds, cpds.initial_state(), 0, parents=parents)
        successor = GlobalState(1, ((2,), (4,)))
        prev, thread, action = parents[successor]
        assert prev == cpds.initial_state()
        assert thread == 0
        assert action.label == "f1"

    def test_divergence_guard_on_fig2(self):
        # foo's recursion pumps the stack inside one context (no FCR).
        cpds = fig2_cpds()
        with pytest.raises(ContextExplosionError):
            thread_context_post(cpds, cpds.initial_state(), 0, max_states=500)
