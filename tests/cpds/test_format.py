"""Tests for the textual CPDS format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.cpds import format_cpds, parse_cpds
from repro.models import fig1_cpds, fig2_cpds

FIG1_TEXT = """
# Fig. 1 of the paper
cpds fig1
shared: 0 1 2 3
init: 0
thread P1
  stack: 1
  rule f1: (0, 1) -> (1, 2)
  rule f2: (3, 2) -> (0, 1)
thread P2
  stack: 4
  rule b1: (0, 4) -> (0, -)
  rule b2: (1, 4) -> (2, 5)
  rule b3: (2, 5) -> (3, 4 6)
"""


class TestParse:
    def test_parse_fig1(self):
        cpds = parse_cpds(FIG1_TEXT)
        assert cpds.name == "fig1"
        assert cpds.n_threads == 2
        assert cpds.shared_states == frozenset({0, 1, 2, 3})
        assert cpds.initial_state() == fig1_cpds().initial_state()
        labels = [a.label for a in cpds.thread(1).actions]
        assert labels == ["b1", "b2", "b3"]

    def test_pop_rule_shape(self):
        cpds = parse_cpds(FIG1_TEXT)
        pop = cpds.thread(1).actions[0]
        assert pop.read == (4,)
        assert pop.write == ()

    def test_push_rule_shape(self):
        cpds = parse_cpds(FIG1_TEXT)
        push = cpds.thread(1).actions[2]
        assert push.write == (4, 6)

    def test_empty_read_rule(self):
        text = "init: 0\nthread T\n  rule (0, -) -> (1, a)\n"
        cpds = parse_cpds(text)
        action = cpds.thread(0).actions[0]
        assert action.read == ()
        assert action.write == ("a",)

    def test_string_and_int_atoms(self):
        text = "init: q0\nthread T\n  rule (q0, 7) -> (q1, sym)\n"
        cpds = parse_cpds(text)
        action = cpds.thread(0).actions[0]
        assert action.from_shared == "q0"
        assert action.read == (7,)
        assert action.write == ("sym",)

    def test_comments_and_blanks_ignored(self):
        text = "# hi\n\ninit: 0 # inline\nthread T\n  rule (0, a) -> (0, a)\n"
        assert parse_cpds(text).n_threads == 1

    def test_unlabeled_rule(self):
        text = "init: 0\nthread T\n  rule (0, a) -> (0, b)\n"
        assert parse_cpds(text).thread(0).actions[0].label == ""


class TestParseErrors:
    def test_missing_init(self):
        with pytest.raises(FormatError):
            parse_cpds("thread T\n  rule (0, a) -> (0, b)\n")

    def test_no_threads(self):
        with pytest.raises(FormatError):
            parse_cpds("init: 0\n")

    def test_rule_outside_thread(self):
        with pytest.raises(FormatError):
            parse_cpds("init: 0\nrule (0, a) -> (0, b)\n")

    def test_bad_rule_syntax_reports_line(self):
        with pytest.raises(FormatError) as err:
            parse_cpds("init: 0\nthread T\n  rule (0 a) - (0, b)\n")
        assert err.value.line == 3

    def test_garbage_line(self):
        with pytest.raises(FormatError):
            parse_cpds("init: 0\nwhatever\n")

    def test_three_symbol_write_rejected(self):
        with pytest.raises(FormatError):
            parse_cpds("init: 0\nthread T\n  rule (0, a) -> (0, a b c)\n")


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [fig1_cpds, fig2_cpds])
    def test_format_then_parse_preserves_structure(self, builder):
        original = builder()
        reparsed = parse_cpds(format_cpds(original))
        assert reparsed.n_threads == original.n_threads
        assert reparsed.initial_state() == original.initial_state()
        for index in range(original.n_threads):
            assert set(reparsed.thread(index).actions) == set(
                original.thread(index).actions
            )

    def test_formatted_text_is_stable(self):
        text = format_cpds(fig1_cpds())
        assert format_cpds(parse_cpds(text)) == text


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_random_cpds_round_trip(data):
    from repro.cpds import CPDS
    from repro.pds import PDS

    n_threads = data.draw(st.integers(min_value=1, max_value=3))
    threads = []
    for t in range(n_threads):
        pds = PDS(initial_shared=0, shared_states={0, 1}, name=f"T{t}")
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            read = data.draw(st.sampled_from([None, "a", "b"]))
            if read is None:
                write = data.draw(st.sampled_from([(), ("a",)]))
            else:
                write = data.draw(st.sampled_from([(), ("a",), ("b", "a")]))
            pds.rule(
                data.draw(st.sampled_from([0, 1])),
                read,
                data.draw(st.sampled_from([0, 1])),
                write,
            )
        threads.append(pds)
    original = CPDS(threads)
    reparsed = parse_cpds(format_cpds(original))
    assert reparsed.n_threads == original.n_threads
    for index in range(original.n_threads):
        assert set(reparsed.thread(index).actions) == set(original.thread(index).actions)
