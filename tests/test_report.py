"""Tests for the report renderer (and its CLI hook)."""


from repro.core import AlwaysSafe, SharedStateReachability
from repro.cuba import Cuba
from repro.models import fig1_cpds, fig2_cpds
from repro.report import render_report


class TestRenderReport:
    def test_safe_report_sections(self):
        cpds = fig1_cpds()
        prop = AlwaysSafe()
        report = Cuba(cpds, prop).verify(max_rounds=20)
        text = render_report(report, cpds, prop)
        assert "CUBA verification report — fig1" in text
        assert "threads:        2" in text
        assert "loop-free" in text
        assert "Alg. 3(T(Rk)) ∥ Scheme 1(Rk)" in text
        assert "SAFE" in text
        assert "kmax (T(Rk)):   5" in text
        assert "EVERY number of contexts" in text

    def test_unsafe_report_has_trace_with_context_switches(self):
        cpds = fig1_cpds()
        prop = SharedStateReachability({3})
        report = Cuba(cpds, prop).verify()
        text = render_report(report, cpds, prop)
        assert "UNSAFE" in text
        assert "bug bound:      2" in text
        assert text.count("context switch") == 2  # T1 run, then T2 run
        assert "b3" in text

    def test_symbolic_route_reported(self):
        cpds = fig2_cpds()
        prop = AlwaysSafe()
        report = Cuba(cpds, prop).verify(max_rounds=10)
        text = render_report(report, cpds, prop)
        assert "INFINITE" in text
        assert "Alg. 3(T(Sk))" in text

    def test_unknown_report(self):
        cpds = fig1_cpds()
        prop = AlwaysSafe()
        report = Cuba(cpds, prop).verify(max_rounds=2)
        text = render_report(report, cpds, prop)
        assert "UNKNOWN" in text
        assert "explored up to" in text


class TestCliReportFlag:
    def test_report_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.cpds import format_cpds

        path = tmp_path / "fig1.cpds"
        path.write_text(format_cpds(fig1_cpds()))
        code = main(["verify", str(path), "--report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CUBA verification report" in out
        assert "Outcome" in out
