"""CFG lowering tests."""

from repro.bp import ast, build_cfg, parse_program
from repro.bp.cfg import (
    AssertOp,
    AssignOp,
    AssumeOp,
    AtomicBeginOp,
    AtomicEndOp,
    CallOp,
    LockOp,
    ReceiveOp,
    ReturnOp,
    SkipOp,
    UnlockOp,
)


def cfg_of(body: str, signature: str = "void f()"):
    program = parse_program(f"{signature} {{ {body} }}")
    return build_cfg(program.functions[0])


def single_op(cfg, location):
    ops = cfg.ops[location]
    assert len(ops) == 1
    return ops[0]


class TestStraightLine:
    def test_skip_chain(self):
        cfg = cfg_of("skip; skip;")
        first = single_op(cfg, cfg.entry)
        assert isinstance(first, SkipOp)
        second = single_op(cfg, first.target)
        assert isinstance(second, SkipOp)
        assert second.target == cfg.exit

    def test_exit_is_implicit_void_return(self):
        cfg = cfg_of("skip;")
        exit_op = single_op(cfg, cfg.exit)
        assert isinstance(exit_op, ReturnOp)
        assert exit_op.value is None

    def test_bool_exit_returns_nondet(self):
        cfg = cfg_of("skip;", "bool f()")
        exit_op = single_op(cfg, cfg.exit)
        assert isinstance(exit_op.value, ast.Nondet)

    def test_empty_function(self):
        cfg = cfg_of("")
        assert cfg.entry == cfg.exit

    def test_assign_and_assert(self):
        cfg = cfg_of("x := 1; assert (x);", "void f(x)")
        assign = single_op(cfg, cfg.entry)
        assert isinstance(assign, AssignOp)
        check = single_op(cfg, assign.target)
        assert isinstance(check, AssertOp)
        assert check.target == cfg.exit


class TestBranching:
    def test_while_shape(self):
        cfg = cfg_of("while (x) { skip; }", "void f(x)")
        test_ops = cfg.ops[cfg.entry]
        assert len(test_ops) == 2
        enter, leave = test_ops
        assert isinstance(enter, AssumeOp) and isinstance(leave, AssumeOp)
        assert isinstance(leave.condition, ast.Not)
        assert leave.target == cfg.exit
        body = single_op(cfg, enter.target)
        assert body.target == cfg.entry  # back edge

    def test_empty_while_self_loop(self):
        cfg = cfg_of("while (x) { }", "void f(x)")
        enter, leave = cfg.ops[cfg.entry]
        assert enter.target == cfg.entry
        assert leave.target == cfg.exit

    def test_if_else_join(self):
        cfg = cfg_of("if (x) { skip; } else { skip; } skip;", "void f(x)")
        then_br, else_br = cfg.ops[cfg.entry]
        join_then = single_op(cfg, then_br.target).target
        join_else = single_op(cfg, else_br.target).target
        assert join_then == join_else

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("if (x) { skip; } skip;", "void f(x)")
        then_br, else_br = cfg.ops[cfg.entry]
        after = single_op(cfg, then_br.target).target
        assert else_br.target == after

    def test_goto_multiway(self):
        cfg = cfg_of("a: goto a, b; b: skip;")
        ops = cfg.ops[cfg.entry]
        assert {op.target for op in ops} == {cfg.entry, cfg.label_of["b"]}

    def test_labels_recorded(self):
        cfg = cfg_of("one: skip; two: skip;")
        assert set(cfg.label_of) == {"one", "two"}


class TestCallsAndAtomic:
    def test_void_call_returns_to_continuation(self):
        program = parse_program("void g() { skip; } void f() { call g(); skip; }")
        cfg = build_cfg(program.function("f"))
        call = single_op(cfg, cfg.entry)
        assert isinstance(call, CallOp)
        cont = single_op(cfg, call.target)
        assert isinstance(cont, SkipOp)

    def test_value_call_gets_await_site(self):
        program = parse_program(
            "bool g() { return 1; } void f() { decl t; t := call g(); skip; }"
        )
        cfg = build_cfg(program.function("f"))
        call = single_op(cfg, cfg.entry)
        assert isinstance(call, CallOp)
        receive = single_op(cfg, call.target)
        assert isinstance(receive, ReceiveOp)
        assert receive.var == "t"
        cont = single_op(cfg, receive.target)
        assert isinstance(cont, SkipOp)

    def test_atomic_brackets(self):
        cfg = cfg_of("atomic { skip; } skip;")
        begin = single_op(cfg, cfg.entry)
        assert isinstance(begin, AtomicBeginOp)
        inner = single_op(cfg, begin.target)
        end = single_op(cfg, inner.target)
        assert isinstance(end, AtomicEndOp)
        after = single_op(cfg, end.target)
        assert isinstance(after, SkipOp)

    def test_empty_atomic(self):
        cfg = cfg_of("atomic { } skip;")
        begin = single_op(cfg, cfg.entry)
        end = single_op(cfg, begin.target)
        assert isinstance(end, AtomicEndOp)

    def test_lock_unlock(self):
        cfg = cfg_of("lock; unlock;")
        lock = single_op(cfg, cfg.entry)
        assert isinstance(lock, LockOp)
        unlock = single_op(cfg, lock.target)
        assert isinstance(unlock, UnlockOp)

    def test_explicit_return_short_circuits(self):
        cfg = cfg_of("return; skip;")
        ret = single_op(cfg, cfg.entry)
        assert isinstance(ret, ReturnOp)
        assert ret.target is None

    def test_n_locations_counts_synthetics(self):
        cfg = cfg_of("atomic { skip; }")
        # entry(begin) + inner + end + exit = 4
        assert cfg.n_locations == 4
