"""Parser tests."""

import pytest

from repro.bp import ast, parse_program
from repro.errors import ParseError


def parse_single_function(body: str) -> ast.Function:
    return parse_program(f"void f() {{ {body} }}").functions[0]


def first_stmt(body: str) -> ast.Stmt:
    return parse_single_function(body).body[0].stmt


class TestProgramStructure:
    def test_shared_decls(self):
        program = parse_program("decl a, b; decl c; void f() { skip; }")
        assert program.shared == ("a", "b", "c")

    def test_decl_without_commas(self):
        program = parse_program("decl a b c; void f() { skip; }")
        assert program.shared == ("a", "b", "c")

    def test_function_signature(self):
        program = parse_program("bool g(p, q) { decl t; return p; }")
        func = program.functions[0]
        assert func.returns_bool
        assert func.params == ("p", "q")
        assert func.locals == ("t",)
        assert func.all_locals == ("p", "q", "t")

    def test_function_lookup(self):
        program = parse_program("void f() { skip; } void g() { skip; }")
        assert program.function("g").name == "g"
        assert program.function_names == ("f", "g")
        with pytest.raises(KeyError):
            program.function("nope")


class TestStatements:
    def test_labels_numeric_and_symbolic(self):
        func = parse_single_function("2: skip; again: skip; skip;")
        assert [labeled.label for labeled in func.body] == ["2", "again", None]

    def test_goto_multiple_targets(self):
        stmt = first_stmt("a: goto a, b; b: skip;")
        assert stmt == ast.Goto(("a", "b"))

    def test_assign_parallel(self):
        stmt = first_stmt("x, y := 1, 0;")
        assert stmt.targets == ("x", "y")
        assert stmt.values == (ast.Const(1), ast.Const(0))
        assert stmt.constrain is None

    def test_assign_with_constrain(self):
        stmt = first_stmt("x := * constrain x | y;")
        assert isinstance(stmt.values[0], ast.Nondet)
        assert isinstance(stmt.constrain, ast.BinOp)

    def test_value_call(self):
        stmt = first_stmt("x := call g(1, *);")
        assert stmt == ast.Call("g", (ast.Const(1), ast.Nondet()), target="x")

    def test_bare_call(self):
        assert first_stmt("call g();") == ast.Call("g", (), target=None)

    def test_multi_target_call_rejected(self):
        with pytest.raises(ParseError):
            parse_single_function("x, y := call g();")

    def test_returns(self):
        assert first_stmt("return;") == ast.Return(None)
        assert first_stmt("return x & y;").value is not None

    def test_while_and_if(self):
        stmt = first_stmt("while (x) { skip; y := 1; }")
        assert isinstance(stmt, ast.While)
        assert len(stmt.body) == 2

    def test_if_else(self):
        stmt = first_stmt("if (x) { skip; } else { y := 1; }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = first_stmt("if (x) { skip; }")
        assert stmt.else_body == ()

    def test_atomic_lock_unlock(self):
        func = parse_single_function("atomic { x := 1; } lock; unlock;")
        assert isinstance(func.body[0].stmt, ast.Atomic)
        assert isinstance(func.body[1].stmt, ast.Lock)
        assert isinstance(func.body[2].stmt, ast.Unlock)

    def test_thread_create_with_and_without_ampersand(self):
        program = parse_program(
            "void w() { skip; } void main() { thread_create(&w); thread_create(w); }"
        )
        stmts = [labeled.stmt for labeled in program.function("main").body]
        assert stmts == [ast.ThreadCreate("w"), ast.ThreadCreate("w")]

    def test_assume_assert(self):
        assert isinstance(first_stmt("assume (x);"), ast.Assume)
        assert isinstance(first_stmt("assert (!x);"), ast.Assert)


class TestExpressions:
    def test_precedence_not_tightest(self):
        stmt = first_stmt("z := !x & y;")
        expr = stmt.values[0]
        assert expr == ast.BinOp("&", ast.Not(ast.Var("x")), ast.Var("y"))

    def test_precedence_and_over_or(self):
        expr = first_stmt("z := a | b & c;").values[0]
        assert expr.op == "|"
        assert expr.right.op == "&"

    def test_precedence_eq_over_and(self):
        expr = first_stmt("z := a & b = c;").values[0]
        assert expr.op == "&"
        assert expr.right.op == "="

    def test_xor_between_and_and_or(self):
        expr = first_stmt("z := a ^ b & c | d;").values[0]
        assert expr.op == "|"
        assert expr.left.op == "^"

    def test_parentheses_override(self):
        expr = first_stmt("z := (a | b) & c;").values[0]
        assert expr.op == "&"
        assert expr.left.op == "|"

    def test_double_equals_alias(self):
        assert first_stmt("z := a == b;").values[0].op == "="

    def test_left_associativity(self):
        expr = first_stmt("z := a & b & c;").values[0]
        assert expr.left == ast.BinOp("&", ast.Var("a"), ast.Var("b"))

    def test_constants_limited_to_bits(self):
        with pytest.raises(ParseError):
            parse_single_function("z := 2;")


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("void f() { skip }")

    def test_unexpected_eof(self):
        with pytest.raises(ParseError):
            parse_program("void f() { skip;")

    def test_bad_expression(self):
        with pytest.raises(ParseError):
            parse_single_function("z := &;")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_program("void f() {\n  z = 1;\n}")  # = instead of :=
        assert err.value.line == 2
