"""Tokenizer tests."""

import pytest

from repro.bp import tokenize
from repro.errors import LexError


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)]


class TestBasics:
    def test_keywords_vs_idents(self):
        tokens = tokenize("decl xdecl declx")
        assert tokens[0].kind == "keyword"
        assert tokens[1].kind == "ident"
        assert tokens[2].kind == "ident"

    def test_all_keywords_recognized(self):
        text = (
            "decl void bool skip goto assume assert call return "
            "constrain while if else atomic lock unlock thread_create"
        )
        assert all(kind == "keyword" for kind in kinds(text))

    def test_numbers(self):
        tokens = tokenize("0 1 42")
        assert [t.kind for t in tokens] == ["number"] * 3
        assert [t.value for t in tokens] == ["0", "1", "42"]

    def test_assign_operator_maximal_munch(self):
        assert values("x := 1") == ["x", ":=", "1"]
        # A bare colon (label) stays a colon.
        assert values("lbl: skip") == ["lbl", ":", "skip"]

    def test_neq_vs_not(self):
        assert values("a != !b") == ["a", "!=", "!", "b"]

    def test_all_operators(self):
        assert values("& | ^ = == * ( ) { } ; , &") == [
            "&", "|", "^", "=", "==", "*", "(", ")", "{", "}", ";", ",", "&",
        ]

    def test_underscored_identifier(self):
        assert tokenize("_x9_y")[0].value == "_x9_y"


class TestComments:
    def test_line_comment(self):
        assert values("x // comment ; junk\ny") == ["x", "y"]

    def test_block_comment(self):
        assert values("x /* a \n b */ y") == ["x", "y"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("x /* never closed")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n  @")
        assert err.value.line == 2
        assert err.value.column == 3

    def test_empty_input(self):
        assert tokenize("") == []
        assert tokenize("  \n\t ") == []
