"""End-to-end tests: Boolean source → CPDS → verification."""

import pytest

from repro.bp import compile_source
from repro.bp.translate import ERR, INIT
from repro.core import Verdict
from repro.cuba import Cuba, check_fcr, scheme1_rk
from repro.errors import TranslationError
from repro.reach import ExplicitReach

FIG2_SOURCE = """
decl x;
void foo() {
  if (*) { call foo(); }
  while (x) { skip; }
  x := 1;
}
void bar() {
  if (*) { call bar(); }
  while (!x) { skip; }
  x := 0;
}
void main() {
  thread_create(&foo);
  thread_create(&bar);
}
"""


class TestFig2Compilation:
    """The paper's Fig. 2 source program, compiled instead of hand-built."""

    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_source(FIG2_SOURCE, init={"x": "*"})

    def test_two_threads(self, compiled):
        assert compiled.cpds.n_threads == 2
        assert compiled.thread_roots == ("foo", "bar")

    def test_initial_state_is_bottom(self, compiled):
        assert compiled.cpds.initial_state().shared == INIT

    def test_violates_fcr_like_the_paper_model(self, compiled):
        assert not check_fcr(compiled.cpds).holds

    def test_symbolic_analysis_proves_safe(self, compiled):
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.SAFE
        assert report.winner == "alg3(T(Sk))"

    def test_descriptions(self, compiled):
        q = (0, 0, None, (1,))
        assert compiled.describe_shared(q) == "{x=1}"
        assert compiled.describe_shared(ERR) == "ERR"
        symbol = ("foo", 0, ())
        assert compiled.describe_symbol(symbol) == "foo@0"


class TestAssertions:
    def test_failing_assert_reaches_err(self):
        source = """
        decl flag;
        void setter() { flag := 1; }
        void checker() { assert (!flag); }
        void main() { thread_create(&setter); thread_create(&checker); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.UNSAFE
        assert report.result.witness.shared == ERR
        assert report.result.trace is not None

    def test_passing_assert_proved_safe(self):
        source = """
        decl flag;
        void setter() { flag := 1; assert (flag); }
        void main() { thread_create(&setter); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.SAFE

    def test_assert_with_nondet_is_violable(self):
        source = """
        void w() { assert (*); }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source)
        result = scheme1_rk(compiled.cpds, compiled.prop)
        assert result.verdict is Verdict.UNSAFE


class TestSequentialSemantics:
    def run_states(self, source, levels=6, **kw):
        compiled = compile_source(source, **kw)
        engine = ExplicitReach(compiled.cpds, track_traces=False)
        engine.ensure_level(levels)
        return compiled, engine

    def test_assignment_and_if(self):
        source = """
        decl a, b;
        void w() {
          a := 1;
          if (a) { b := 1; } else { b := 0; }
          assert (b);
        }
        void main() { thread_create(&w); }
        """
        compiled, engine = self.run_states(source)
        shareds = {state.shared for state in engine.first_seen}
        assert ERR not in shareds
        assert (0, 0, None, (1, 1)) in shareds

    def test_while_loop_terminates_analysis(self):
        source = """
        decl done;
        void w() {
          while (!done) { done := 1; }
          assert (done);
        }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.SAFE

    def test_constrain_filters_transitions(self):
        source = """
        decl p, q;
        void w() {
          p, q := *, * constrain p != q;
          assert (p != q);
        }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.SAFE

    def test_goto_nondeterminism(self):
        source = """
        decl hit_a, hit_b;
        void w() {
          goto a, b;
          a: hit_a := 1;
          return;
          b: hit_b := 1;
        }
        void main() { thread_create(&w); }
        """
        compiled, engine = self.run_states(source)
        vals = {state.shared[3] for state in engine.first_seen if isinstance(state.shared, tuple)}
        assert (1, 0) in vals
        assert (0, 1) in vals
        assert (1, 1) not in vals  # return before b, no fallthrough to b


class TestCallsAndReturns:
    def test_value_call_round_trip(self):
        source = """
        decl out;
        bool negate(p) { return !p; }
        void w() {
          decl t;
          t := call negate(0);
          out := t;
          assert (out);
        }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=12)
        assert report.verdict is Verdict.SAFE

    def test_recursive_bool_function(self):
        # flip(1, 1) = flip(!1, 0) = 0: one recursion level negates once.
        source = """
        decl out;
        bool flip(p, depth) {
          decl t;
          if (depth) { t := call flip(!p, 0); return t; }
          return p;
        }
        void w() {
          decl t;
          t := call flip(1, 1);
          out := t;
          assert (!out);
        }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=12)
        assert report.verdict is Verdict.SAFE

    def test_handoff_not_corrupted_by_other_thread(self):
        # While a return value is in flight the other thread is frozen,
        # so the asserted equality can't be broken mid-handoff.
        source = """
        decl shared_val;
        bool get() { return shared_val; }
        void reader() {
          decl t;
          t := call get();
          assert (t = shared_val | !t | t);
        }
        void writer() { shared_val := 1; shared_val := 0; }
        void main() { thread_create(&reader); thread_create(&writer); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=12)
        assert report.verdict is Verdict.SAFE


class TestAtomicAndLock:
    def test_atomic_check_then_set_is_safe(self):
        source = """
        decl balance, busy;
        void w1() {
          atomic { assume (!busy); busy := 1; }
          assert (!balance);
          balance := 1;
          balance := 0;
          busy := 0;
        }
        void w2() {
          atomic { assume (!busy); busy := 1; }
          assert (!balance);
          balance := 1;
          balance := 0;
          busy := 0;
        }
        void main() { thread_create(&w1); thread_create(&w2); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=20)
        assert report.verdict is Verdict.SAFE

    def test_unprotected_version_is_unsafe(self):
        source = """
        decl balance;
        void w1() { assert (!balance); balance := 1; balance := 0; }
        void w2() { assert (!balance); balance := 1; balance := 0; }
        void main() { thread_create(&w1); thread_create(&w2); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=20)
        assert report.verdict is Verdict.UNSAFE

    def test_lock_protects_critical_section(self):
        source = """
        decl balance;
        void w1() { lock; assert (!balance); balance := 1; balance := 0; unlock; }
        void w2() { lock; assert (!balance); balance := 1; balance := 0; unlock; }
        void main() { thread_create(&w1); thread_create(&w2); }
        """
        compiled = compile_source(source)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=20)
        assert report.verdict is Verdict.SAFE


class TestTranslationErrors:
    def test_unknown_init_variable(self):
        with pytest.raises(TranslationError):
            compile_source(
                "void w() { skip; } void main() { thread_create(&w); }",
                init={"ghost": 1},
            )

    def test_nondet_locals_entry_needs_bottom(self):
        source = """
        void w() { decl t; assert (t | !t); }
        void main() { thread_create(&w); }
        """
        with pytest.raises(TranslationError):
            compile_source(source, nondet_locals=True)

    def test_nondet_locals_with_bottom_ok(self):
        source = """
        decl x;
        void w() { decl t; assert (t | !t); }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source, init={"x": "*"}, nondet_locals=True)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=10)
        assert report.verdict is Verdict.SAFE


class TestInitialValues:
    def test_concrete_init(self):
        source = """
        decl x;
        void w() { assert (x); }
        void main() { thread_create(&w); }
        """
        safe = compile_source(source, init={"x": 1})
        assert Cuba(safe.cpds, safe.prop).verify().verdict is Verdict.SAFE
        unsafe = compile_source(source, init={"x": 0})
        assert Cuba(unsafe.cpds, unsafe.prop).verify().verdict is Verdict.UNSAFE

    def test_nondet_init_explores_both(self):
        source = """
        decl x;
        void w() { assert (x); }
        void main() { thread_create(&w); }
        """
        compiled = compile_source(source, init={"x": "*"})
        report = Cuba(compiled.cpds, compiled.prop).verify()
        assert report.verdict is Verdict.UNSAFE  # x = 0 branch fails
