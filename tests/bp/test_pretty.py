"""Pretty-printer round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bp import ast, parse_program, pretty_program
from repro.bp.pretty import pretty_expr

SAMPLES = [
    """
decl x;
void foo() {
  if (*) { call foo(); }
  while (x) { skip; }
  x := 1;
}
void main() { thread_create(&foo); }
""",
    """
decl a, b;
bool pick(p) {
  decl t;
  t := * constrain t | p;
  return t;
}
void w() {
  decl r;
  start: r := call pick(a & !b);
  assert (r != b);
  goto start, out;
  out: atomic { a, b := 1, 0; }
  lock;
  unlock;
  return;
}
void main() { thread_create(&w); }
""",
    """
void w() {
  2: if (a = b) { skip; } else { 5: assume (!a); }
  while (a ^ b) { a := !a; }
}
decl a, b;
void main() { thread_create(&w); }
""".replace("void w", "void w", 1),
]


def normalize(program: ast.Program):
    """ASTs compare by value (frozen dataclasses) modulo line numbers."""
    def strip(labeled: ast.LabeledStmt):
        stmt = labeled.stmt
        if isinstance(stmt, ast.While):
            stmt = ast.While(stmt.condition, tuple(map(strip, stmt.body)))
        elif isinstance(stmt, ast.If):
            stmt = ast.If(
                stmt.condition,
                tuple(map(strip, stmt.then_body)),
                tuple(map(strip, stmt.else_body)),
            )
        elif isinstance(stmt, ast.Atomic):
            stmt = ast.Atomic(tuple(map(strip, stmt.body)))
        return ast.LabeledStmt(stmt, labeled.label, 0)

    return ast.Program(
        program.shared,
        tuple(
            ast.Function(
                f.name, f.params, f.locals, tuple(map(strip, f.body)), f.returns_bool
            )
            for f in program.functions
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("source", SAMPLES[:2])
    def test_parse_pretty_parse(self, source):
        first = parse_program(source)
        second = parse_program(pretty_program(first))
        assert normalize(first) == normalize(second)

    def test_pretty_is_stable(self):
        program = parse_program(SAMPLES[0])
        once = pretty_program(program)
        twice = pretty_program(parse_program(once))
        assert once == twice


class TestPrettyExpr:
    def test_simple(self):
        assert pretty_expr(ast.BinOp("&", ast.Var("a"), ast.Const(1))) == "a & 1"

    def test_parentheses_only_when_needed(self):
        # (a | b) & c needs parens; a & b | c does not.
        expr = ast.BinOp("&", ast.BinOp("|", ast.Var("a"), ast.Var("b")), ast.Var("c"))
        assert pretty_expr(expr) == "(a | b) & c"
        expr = ast.BinOp("|", ast.BinOp("&", ast.Var("a"), ast.Var("b")), ast.Var("c"))
        assert pretty_expr(expr) == "a & b | c"

    def test_not_binds_tightest(self):
        expr = ast.Not(ast.BinOp("&", ast.Var("a"), ast.Var("b")))
        assert pretty_expr(expr) == "!(a & b)"

    def test_right_assoc_needs_parens(self):
        expr = ast.BinOp("&", ast.Var("a"), ast.BinOp("&", ast.Var("b"), ast.Var("c")))
        assert pretty_expr(expr) == "a & (b & c)"


# ---------------------------------------------------------------------------
# Property-based: random expressions round-trip through the printer.
# ---------------------------------------------------------------------------

def exprs():
    leaves = st.sampled_from(
        [ast.Const(0), ast.Const(1), ast.Var("a"), ast.Var("b"), ast.Nondet()]
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(ast.Not, children),
            st.builds(
                ast.BinOp, st.sampled_from(["&", "|", "^", "=", "!="]), children, children
            ),
        ),
        max_leaves=12,
    )


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_expr_round_trip(expr):
    source = f"void w() {{ z := {pretty_expr(expr)}; }} "
    program = parse_program(source)
    reparsed = program.functions[0].body[0].stmt.values[0]
    assert reparsed == expr
