"""Expression evaluation and semantic-analysis tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bp import analyze, ast, parse_program
from repro.bp.eval import BOTH, eval_expr, free_variables, may_be_false, may_be_true
from repro.errors import SemanticError


class TestEvalExpr:
    def test_constants(self):
        assert eval_expr(ast.Const(1), {}) == frozenset({1})

    def test_variables(self):
        assert eval_expr(ast.Var("x"), {"x": 0}) == frozenset({0})

    def test_undefined_variable(self):
        with pytest.raises(SemanticError):
            eval_expr(ast.Var("ghost"), {})

    def test_nondet(self):
        assert eval_expr(ast.Nondet(), {}) == BOTH

    def test_not(self):
        assert eval_expr(ast.Not(ast.Const(0)), {}) == frozenset({1})
        assert eval_expr(ast.Not(ast.Nondet()), {}) == BOTH

    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            ("&", 1, 1, 1), ("&", 1, 0, 0),
            ("|", 0, 0, 0), ("|", 0, 1, 1),
            ("^", 1, 1, 0), ("^", 1, 0, 1),
            ("=", 1, 1, 1), ("=", 0, 1, 0),
            ("!=", 0, 1, 1), ("!=", 1, 1, 0),
        ],
    )
    def test_binops(self, op, a, b, expected):
        expr = ast.BinOp(op, ast.Const(a), ast.Const(b))
        assert eval_expr(expr, {}) == frozenset({expected})

    def test_nondet_propagates_setwise(self):
        # * & 0 is always 0; * & 1 is either.
        assert eval_expr(ast.BinOp("&", ast.Nondet(), ast.Const(0)), {}) == frozenset({0})
        assert eval_expr(ast.BinOp("&", ast.Nondet(), ast.Const(1)), {}) == BOTH

    def test_may_helpers(self):
        env = {"x": 1}
        assert may_be_true(ast.Var("x"), env)
        assert not may_be_false(ast.Var("x"), env)
        assert may_be_false(ast.Nondet(), env)

    def test_free_variables(self):
        expr = ast.BinOp("&", ast.Var("a"), ast.Not(ast.BinOp("|", ast.Var("b"), ast.Const(1))))
        assert free_variables(expr) == frozenset({"a", "b"})


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=1))
def test_eval_deterministic_expressions_are_singletons(a, b):
    env = {"a": a, "b": b}
    expr = ast.BinOp("^", ast.Var("a"), ast.Not(ast.Var("b")))
    assert eval_expr(expr, env) == frozenset({a ^ (1 - b)})


GOOD = """
decl g;
bool id(p) { return p; }
void worker() {
  decl t;
  t := call id(g);
  loop: if (t) { goto loop; }
  assert (!t | g);
}
void main() { thread_create(&worker); }
"""


class TestAnalyzeAccepts:
    def test_wellformed_program(self):
        table = analyze(parse_program(GOOD))
        assert table.thread_roots == ("worker",)
        assert table.calls["worker"] == frozenset({"id"})
        assert table.callees_closure("worker") == frozenset({"worker", "id"})

    def test_atomic_tracking(self):
        src = """
        void w() { atomic { skip; } }
        void main() { thread_create(&w); }
        """
        table = analyze(parse_program(src))
        assert table.has_atomic == frozenset({"w"})


def expect_error(source, fragment):
    with pytest.raises(SemanticError) as err:
        analyze(parse_program(source))
    assert fragment in str(err.value), str(err.value)


class TestAnalyzeRejects:
    def test_missing_main(self):
        expect_error("void f() { skip; }", "no main")

    def test_main_with_logic(self):
        expect_error(
            "decl x; void w() { skip; } "
            "void main() { thread_create(&w); x := 1; }",
            "only thread_create",
        )

    def test_no_threads(self):
        expect_error("void main() { skip; }", "creates no threads")

    def test_undefined_variable(self):
        expect_error(
            "void w() { ghost := 1; } void main() { thread_create(&w); }",
            "undefined assignment target",
        )

    def test_undefined_in_condition(self):
        expect_error(
            "void w() { assume (ghost); } void main() { thread_create(&w); }",
            "undefined variable",
        )

    def test_arity_mismatch_assignment(self):
        expect_error(
            "decl a, b; void w() { a, b := 1; } void main() { thread_create(&w); }",
            "targets but",
        )

    def test_duplicate_shared(self):
        expect_error(
            "decl a; decl a; void w() { skip; } void main() { thread_create(&w); }",
            "declared twice",
        )

    def test_duplicate_local(self):
        expect_error(
            "void w() { decl t, t; skip; } void main() { thread_create(&w); }",
            "declared twice",
        )

    def test_duplicate_label(self):
        expect_error(
            "void w() { l: skip; l: skip; } void main() { thread_create(&w); }",
            "duplicate label",
        )

    def test_goto_unknown_label(self):
        expect_error(
            "void w() { goto nowhere; } void main() { thread_create(&w); }",
            "unknown label",
        )

    def test_call_undefined_function(self):
        expect_error(
            "void w() { call nope(); } void main() { thread_create(&w); }",
            "undefined function",
        )

    def test_call_arity(self):
        expect_error(
            "bool g(p) { return p; } void w() { decl t; t := call g(); } "
            "void main() { thread_create(&w); }",
            "expects 1 arguments",
        )

    def test_void_function_in_value_call(self):
        expect_error(
            "void g() { skip; } void w() { decl t; t := call g(); } "
            "void main() { thread_create(&w); }",
            "void function g used in value call",
        )

    def test_bool_function_without_target(self):
        expect_error(
            "bool g() { return 1; } void w() { call g(); } "
            "void main() { thread_create(&w); }",
            "requires a target",
        )

    def test_void_returning_value(self):
        expect_error(
            "void w() { return 1; } void main() { thread_create(&w); }",
            "void function returns a value",
        )

    def test_bool_bare_return(self):
        expect_error(
            "bool g() { return; } void w() { decl t; t := call g(); } "
            "void main() { thread_create(&w); }",
            "returns no value",
        )

    def test_thread_create_outside_main(self):
        expect_error(
            "void w() { thread_create(&w); } void main() { thread_create(&w); }",
            "thread_create outside main",
        )

    def test_thread_root_with_params(self):
        expect_error(
            "void w(p) { skip; } void main() { thread_create(&w); }",
            "must be void and parameterless",
        )

    def test_nested_atomic(self):
        expect_error(
            "void w() { atomic { atomic { skip; } } } "
            "void main() { thread_create(&w); }",
            "nested atomic",
        )

    def test_atomic_via_call(self):
        expect_error(
            "void inner() { atomic { skip; } } "
            "void w() { atomic { call inner(); } } "
            "void main() { thread_create(&w); }",
            "reaches atomic",
        )

    def test_atomic_via_transitive_call(self):
        expect_error(
            "void deep() { atomic { skip; } } "
            "void mid() { call deep(); } "
            "void w() { atomic { call mid(); } } "
            "void main() { thread_create(&w); }",
            "reaches atomic",
        )
