"""Unit tests for PDS actions and states."""

import pytest

from repro.errors import ModelError
from repro.pds import EMPTY, Action, ActionKind, PDSState, format_stack, format_top


class TestActionClassification:
    def test_pop(self):
        assert Action.make(0, "a", 1, ()).kind is ActionKind.POP

    def test_overwrite(self):
        assert Action.make(0, "a", 1, ("b",)).kind is ActionKind.OVERWRITE

    def test_push(self):
        assert Action.make(0, "a", 1, ("b", "c")).kind is ActionKind.PUSH

    def test_empty_overwrite(self):
        assert Action.make(0, None, 1, ()).kind is ActionKind.EMPTY_OVERWRITE

    def test_empty_push(self):
        assert Action.make(0, None, 1, ("a",)).kind is ActionKind.EMPTY_PUSH

    def test_empty_stack_cannot_push_two(self):
        with pytest.raises(ModelError):
            Action.make(0, None, 1, ("a", "b"))

    def test_cannot_write_three(self):
        with pytest.raises(ModelError):
            Action.make(0, "a", 1, ("x", "y", "z"))

    def test_cannot_read_two(self):
        with pytest.raises(ModelError):
            Action(0, ("a", "b"), 1, ())

    def test_reads_empty_stack_flag(self):
        assert ActionKind.EMPTY_PUSH.reads_empty_stack
        assert ActionKind.EMPTY_OVERWRITE.reads_empty_stack
        assert not ActionKind.PUSH.reads_empty_stack

    def test_label_not_part_of_equality(self):
        one = Action.make(0, "a", 1, (), label="x")
        two = Action.make(0, "a", 1, (), label="y")
        assert one == two

    def test_make_accepts_sequence_read(self):
        assert Action.make(0, ["a"], 1, ()).read == ("a",)

    def test_str_shows_label_and_shape(self):
        action = Action.make(0, "a", 1, ("b", "c"), label="f1")
        assert str(action) == "f1: (0,a)→(1,bc)"

    def test_str_empty_read(self):
        assert str(Action.make(0, None, 1, ())) == "(0,ε)→(1,ε)"


class TestPDSState:
    def test_top_of_nonempty(self):
        assert PDSState(0, ("a", "b")).top == "a"

    def test_top_of_empty_is_EMPTY(self):
        assert PDSState(0, ()).top is EMPTY

    def test_visible_projection(self):
        assert PDSState(1, ("x", "y", "z")).visible() == (1, "x")
        assert PDSState(1, ()).visible() == (1, EMPTY)

    def test_stack_coerced_to_tuple(self):
        state = PDSState(0, ["a", "b"])
        assert isinstance(state.stack, tuple)
        assert hash(state)  # must stay hashable

    def test_str(self):
        assert str(PDSState(0, ("1", "2"))) == "⟨0|12⟩"
        assert str(PDSState(3, ())) == "⟨3|ε⟩"

    def test_equality_and_hash(self):
        assert PDSState(0, ("a",)) == PDSState(0, ("a",))
        assert len({PDSState(0, ("a",)), PDSState(0, ("a",))}) == 1


class TestFormatting:
    def test_format_top(self):
        assert format_top(EMPTY) == "ε"
        assert format_top("a") == "a"

    def test_format_stack(self):
        assert format_stack(()) == "ε"
        assert format_stack(("a", "b")) == "ab"
