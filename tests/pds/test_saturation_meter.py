"""Work-counter comparison: worklist post* vs the naive oracle.

Acceptance invariant for the worklist engine (see the Performance notes
in :mod:`repro.pds.saturation`): on the paper's benchmark workloads
(Fig. 5 / Table 2 programs) the worklist engine performs *strictly
fewer* rule applications than :func:`repro.pds.post_star_naive`, as
measured by the :data:`repro.util.METER` counters — while producing the
same language.
"""

import pytest

from repro.models.registry import smallest_per_row
from repro.pds import PDSState, post_star, post_star_naive, psa_for_configs
from repro.util import scoped

# Smallest configuration of each Fig. 5 / Table 2 suite (keeps the
# naive oracle's quadratic sweeps affordable in tier-1 time).
BENCHES = smallest_per_row()


def _initial_psas(cpds):
    """One initial P-automaton per thread: the thread's view of the CPDS
    initial state (exactly what a first context expansion saturates)."""
    initial = cpds.initial_state()
    for index, pds in enumerate(cpds.threads):
        yield index, pds, psa_for_configs(
            pds, [PDSState(initial.shared, initial.stacks[index])]
        )


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.row)
def test_worklist_strictly_fewer_rule_applications(bench):
    cpds, _prop = bench.build()
    for index, pds, psa in _initial_psas(cpds):
        with scoped() as work:
            fast = post_star(pds, psa)
        with scoped() as oracle_work:
            slow = post_star_naive(pds, psa)

        fast_apps = work.get("post_star.rule_applications", 0)
        slow_apps = oracle_work.get("post_star_naive.rule_applications", 0)
        assert slow_apps > 0, f"{bench.row} thread {index}: oracle did no work"
        assert fast_apps < slow_apps, (
            f"{bench.row} thread {index}: worklist used {fast_apps} rule "
            f"applications, naive {slow_apps} — worklist must be strictly lower"
        )
        # Same language, or the comparison is meaningless.
        for shared in pds.shared_states:
            assert fast.tops(shared) == slow.tops(shared)


@pytest.mark.parametrize("bench", BENCHES[:3], ids=lambda b: b.row)
def test_counters_present_and_monotone(bench):
    cpds, _prop = bench.build()
    _index, pds, psa = next(_initial_psas(cpds))
    with scoped() as work:
        post_star(pds, psa)
    assert work.get("post_star.edges_added", 0) > 0
    assert work.get("post_star.rule_applications", 0) >= 0
    # A second identical run adds its own work on top (monotone METER).
    with scoped() as again:
        post_star(pds, psa)
    assert again.get("post_star.edges_added", 0) == work["post_star.edges_added"]
