"""Unit tests for the PDS container and its explicit step semantics."""

import pytest

from repro.errors import ContextExplosionError, ModelError
from repro.pds import PDS, Action, PDSState, enabled_actions, post_star_explicit, step, successors


def fig1_thread2():
    """Thread 2 of the paper's Fig. 1 CPDS (∆2)."""
    pds = PDS(initial_shared=0, shared_states={0, 1, 2, 3}, name="P2")
    pds.rule(0, "4", 0, (), label="b1")
    pds.rule(1, "4", 2, ("5",), label="b2")
    pds.rule(2, "5", 3, ("4", "6"), label="b3")
    return pds


class TestPDSContainer:
    def test_auto_registration(self):
        pds = PDS(initial_shared="i")
        pds.rule("i", "a", "j", ("b", "c"))
        assert pds.shared_states == frozenset({"i", "j"})
        assert pds.alphabet == frozenset({"a", "b", "c"})

    def test_actions_for_trigger(self):
        pds = fig1_thread2()
        labels = [a.label for a in pds.actions_for(0, "4")]
        assert labels == ["b1"]
        assert pds.actions_for(9, "4") == ()

    def test_empty_stack_trigger_uses_none(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, None, 1, ("a",))
        assert len(pds.actions_for(0, None)) == 1

    def test_rejects_none_symbol(self):
        pds = PDS(initial_shared=0)
        with pytest.raises(ModelError):
            pds.add_action(Action(0, (None,), 1, ()))

    def test_initial_state_default_empty(self):
        assert fig1_thread2().initial_state() == PDSState(0, ())

    def test_initial_state_with_stack(self):
        assert fig1_thread2().initial_state(["4"]) == PDSState(0, ("4",))

    def test_initial_state_checks_alphabet(self):
        with pytest.raises(ModelError):
            fig1_thread2().initial_state(["zz"])

    def test_validate_passes_on_wellformed(self):
        fig1_thread2().validate()


class TestStepSemantics:
    def test_pop_removes_top(self):
        action = Action.make(0, "4", 0, ())
        assert step(PDSState(0, ("4", "6")), action) == PDSState(0, ("6",))

    def test_pop_last_symbol_empties_stack(self):
        action = Action.make(0, "4", 1, ())
        assert step(PDSState(0, ("4",)), action) == PDSState(1, ())

    def test_overwrite_replaces_top(self):
        action = Action.make(1, "4", 2, ("5",))
        assert step(PDSState(1, ("4", "6")), action) == PDSState(2, ("5", "6"))

    def test_push_grows_stack_and_overwrites(self):
        # (2,5) → (3,46): 5 becomes 6, 4 pushed above (paper Fig. 1 b3).
        action = Action.make(2, "5", 3, ("4", "6"))
        assert step(PDSState(2, ("5",)), action) == PDSState(3, ("4", "6"))
        assert step(PDSState(2, ("5", "9")), action) == PDSState(3, ("4", "6", "9"))

    def test_empty_overwrite_changes_shared_only(self):
        action = Action.make(0, None, 7, ())
        assert step(PDSState(0, ()), action) == PDSState(7, ())

    def test_empty_push_starts_stack(self):
        action = Action.make(0, None, 1, ("a",))
        assert step(PDSState(0, ()), action) == PDSState(1, ("a",))

    def test_enabled_actions_depend_on_visible_state(self):
        pds = fig1_thread2()
        assert [a.label for a in enabled_actions(pds, PDSState(0, ("4", "6")))] == ["b1"]
        assert [a.label for a in enabled_actions(pds, PDSState(1, ("4",)))] == ["b2"]
        assert enabled_actions(pds, PDSState(0, ("6",))) == ()
        assert enabled_actions(pds, PDSState(0, ())) == ()

    def test_successors_pairs_action_with_state(self):
        pds = fig1_thread2()
        pairs = list(successors(pds, PDSState(0, ("4",))))
        assert len(pairs) == 1
        action, state = pairs[0]
        assert action.label == "b1"
        assert state == PDSState(0, ())


class TestPostStarExplicit:
    def test_terminating_exploration(self):
        pds = fig1_thread2()
        reached = post_star_explicit(pds, PDSState(0, ("4",)))
        assert reached == {PDSState(0, ("4",)), PDSState(0, ())}

    def test_run_through_shared_changes(self):
        pds = fig1_thread2()
        reached = post_star_explicit(pds, PDSState(1, ("4",)))
        assert PDSState(2, ("5",)) in reached
        assert PDSState(3, ("4", "6")) in reached
        # From (3, top 4) nothing fires.
        assert len(reached) == 3

    def test_divergence_guard_raises(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 0, ("a", "a"))  # unbounded growth
        with pytest.raises(ContextExplosionError) as err:
            post_star_explicit(pds, PDSState(0, ("a",)), max_states=50)
        assert err.value.states_seen > 50

    def test_zero_steps_included(self):
        pds = fig1_thread2()
        start = PDSState(3, ("9",))
        assert post_star_explicit(pds, start) == {start}
