"""Differential testing: worklist post* vs the naive reference.

The production :func:`post_star` (worklist, derived ε-closure) and
:func:`post_star_naive` (direct rule transcription, fixpoint) must
accept exactly the same configurations for any PDS and initial set.

Two generators feed the harness: hypothesis strategies (shrinking,
adversarial) and the library's own seeded generator
:mod:`repro.models.random_gen` (reproducible bulk — 200+ systems per
run, including empty-stack actions and multi-config initial sets).  The
incremental warm start of :class:`repro.pds.PostStarEngine` is checked
against a cold saturation of the same enlarged initial set.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.random_gen import RandomSpec, random_cpds
from repro.pds import (
    PDS,
    PDSState,
    PostStarEngine,
    post_star,
    post_star_naive,
    psa_for_configs,
)

SYMBOLS = ("a", "b")
SHARED = (0, 1, 2)


@st.composite
def random_pds_and_configs(draw):
    pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        src = draw(st.sampled_from(SHARED))
        dst = draw(st.sampled_from(SHARED))
        read = draw(st.sampled_from([None, "a", "b"]))
        if read is None:
            write = draw(st.sampled_from([(), ("a",), ("b",)]))
        else:
            write = draw(
                st.sampled_from(
                    [(), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]
                )
            )
        pds.rule(src, read, dst, write)
    n_configs = draw(st.integers(min_value=1, max_value=3))
    configs = []
    for _ in range(n_configs):
        shared = draw(st.sampled_from(SHARED))
        stack = tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2)))
        configs.append(PDSState(shared, stack))
    return pds, configs


@settings(max_examples=120, deadline=None)
@given(random_pds_and_configs())
def test_worklist_matches_naive(case):
    pds, configs = case
    fast = post_star(pds, psa_for_configs(pds, configs))
    slow = post_star_naive(pds, psa_for_configs(pds, configs))
    for shared in SHARED:
        assert fast.tops(shared) == slow.tops(shared), f"tops({shared})"
        fast_states = set(fast.enumerate_states(3))
        slow_states = set(slow.enumerate_states(3))
        assert fast_states == slow_states


@settings(max_examples=60, deadline=None)
@given(random_pds_and_configs())
def test_worklist_matches_naive_on_long_stacks(case):
    pds, configs = case
    fast = post_star(pds, psa_for_configs(pds, configs))
    slow = post_star_naive(pds, psa_for_configs(pds, configs))
    assert set(fast.enumerate_states(5)) == set(slow.enumerate_states(5))


# ---------------------------------------------------------------------------
# Bulk randomized harness over the library's seeded generator.
# ---------------------------------------------------------------------------

#: Shape chosen so empty-stack actions, pushes, and multi-symbol stacks
#: all occur regularly (empty_read_bias well above the generator default).
_SPEC = RandomSpec(
    n_threads=1,
    n_shared=3,
    n_symbols=2,
    rules_per_thread=7,
    push_bias=0.35,
    empty_read_bias=0.25,
    max_initial_stack=2,
)

N_RANDOM_SYSTEMS = 200


def _random_case(seed: int) -> tuple[PDS, list[PDSState]]:
    """Reproducible random PDS + initial config set for one seed."""
    pds = random_cpds(seed, _SPEC).thread(0)
    rng = random.Random(seed * 7919 + 17)
    shared = sorted(pds.shared_states)
    symbols = sorted(pds.alphabet)
    configs = []
    for _ in range(rng.randint(1, 3)):
        stack = tuple(
            rng.choice(symbols) for _ in range(rng.randint(0, 2))
        )
        configs.append(PDSState(rng.choice(shared), stack))
    return pds, configs


def _accepted_sets(psa, shared_states, depth=4):
    return {
        "tops": {shared: psa.tops(shared) for shared in shared_states},
        "states": set(psa.enumerate_states(depth)),
    }


@pytest.mark.parametrize("seed", range(N_RANDOM_SYSTEMS))
def test_randomized_differential(seed):
    """Worklist ≡ naive on 200 seeded random PDSs (zero divergences)."""
    pds, configs = _random_case(seed)
    fast = post_star(pds, psa_for_configs(pds, configs))
    slow = post_star_naive(pds, psa_for_configs(pds, configs))
    shared = sorted(pds.shared_states)
    assert _accepted_sets(fast, shared) == _accepted_sets(slow, shared), (
        f"divergence on seed {seed}: {pds!r}, configs {configs}"
    )


@pytest.mark.parametrize("seed", range(0, N_RANDOM_SYSTEMS, 4))
def test_incremental_warm_start_matches_cold(seed):
    """Saturate a prefix of the configs, inject the rest, resaturate —
    must equal a cold saturation of the full set (and the oracle)."""
    pds, configs = _random_case(seed)
    extra = [PDSState(sorted(pds.shared_states)[0], ())]
    all_configs = configs + extra

    engine = PostStarEngine(pds, psa_for_configs(pds, configs[:1]))
    engine.saturate()
    for config in configs[1:] + extra:
        engine.add_config(config)
    warm = engine.saturate()

    cold = post_star(pds, psa_for_configs(pds, all_configs))
    oracle = post_star_naive(pds, psa_for_configs(pds, all_configs))
    shared = sorted(pds.shared_states)
    warm_sets = _accepted_sets(warm, shared)
    assert warm_sets == _accepted_sets(cold, shared)
    assert warm_sets == _accepted_sets(oracle, shared)


@pytest.mark.parametrize("seed", range(0, N_RANDOM_SYSTEMS, 8))
def test_incremental_edge_injection_matches_cold(seed):
    """Warm-starting with raw extra edges (not whole configs) also equals
    cold saturation over the union automaton."""
    pds, configs = _random_case(seed)
    symbols = sorted(pds.alphabet)
    shared = sorted(pds.shared_states)

    engine = PostStarEngine(pds, psa_for_configs(pds, configs))
    engine.saturate()
    # Extra edge: another entry reading symbols[0] straight to the sink,
    # i.e. the config ⟨shared[-1]|symbols[0]⟩.
    from repro.pds.psa import FINAL_SINK

    engine.add_transition(shared[-1], symbols[0], FINAL_SINK)
    warm = engine.saturate()

    cold = post_star(
        pds,
        psa_for_configs(pds, configs + [PDSState(shared[-1], (symbols[0],))]),
    )
    assert _accepted_sets(warm, shared) == _accepted_sets(cold, shared)
