"""Differential testing: worklist post* vs the naive reference.

The production :func:`post_star` (worklist, derived ε-closure) and
:func:`post_star_naive` (direct rule transcription, fixpoint) must
accept exactly the same configurations for any PDS and initial set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pds import PDS, PDSState, post_star, post_star_naive, psa_for_configs

SYMBOLS = ("a", "b")
SHARED = (0, 1, 2)


@st.composite
def random_pds_and_configs(draw):
    pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        src = draw(st.sampled_from(SHARED))
        dst = draw(st.sampled_from(SHARED))
        read = draw(st.sampled_from([None, "a", "b"]))
        if read is None:
            write = draw(st.sampled_from([(), ("a",), ("b",)]))
        else:
            write = draw(
                st.sampled_from(
                    [(), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]
                )
            )
        pds.rule(src, read, dst, write)
    n_configs = draw(st.integers(min_value=1, max_value=3))
    configs = []
    for _ in range(n_configs):
        shared = draw(st.sampled_from(SHARED))
        stack = tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2)))
        configs.append(PDSState(shared, stack))
    return pds, configs


@settings(max_examples=120, deadline=None)
@given(random_pds_and_configs())
def test_worklist_matches_naive(case):
    pds, configs = case
    fast = post_star(pds, psa_for_configs(pds, configs))
    slow = post_star_naive(pds, psa_for_configs(pds, configs))
    for shared in SHARED:
        assert fast.tops(shared) == slow.tops(shared), f"tops({shared})"
        fast_states = set(fast.enumerate_states(3))
        slow_states = set(slow.enumerate_states(3))
        assert fast_states == slow_states


@settings(max_examples=60, deadline=None)
@given(random_pds_and_configs())
def test_worklist_matches_naive_on_long_stacks(case):
    pds, configs = case
    fast = post_star(pds, psa_for_configs(pds, configs))
    slow = post_star_naive(pds, psa_for_configs(pds, configs))
    assert set(fast.enumerate_states(5)) == set(slow.enumerate_states(5))
