"""Tests for post* saturation and pushdown store automata.

The centerpiece golden test is the PDS of the paper's Fig. 7 (App. C),
whose reachable set from ⟨q0|σ0⟩ is infinite but regular.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ContextExplosionError, ModelError
from repro.automata import NFA
from repro.pds import (
    EMPTY,
    PDS,
    PDSState,
    PSA,
    post_star,
    post_star_explicit,
    psa_for_configs,
)
from repro.pds.saturation import reachable_set_psa, shallow_configs_psa


def fig7_pds():
    """App. C, Fig. 7: P over Q={q0,q1,q2}, Σ={s0,s1,s2}."""
    pds = PDS(initial_shared="q0")
    pds.rule("q0", "s0", "q1", ("s1", "s0"))
    pds.rule("q1", "s1", "q2", ("s2", "s0"))
    pds.rule("q2", "s2", "q0", ("s1",))
    pds.rule("q0", "s1", "q0", ())
    return pds


class TestPsaForConfigs:
    def test_accepts_exactly_given_configs(self):
        pds = fig7_pds()
        configs = [PDSState("q0", ("s0",)), PDSState("q1", ("s1", "s0"))]
        psa = psa_for_configs(pds, configs)
        for config in configs:
            assert psa.accepts(config)
        assert not psa.accepts(PDSState("q0", ()))
        assert not psa.accepts(PDSState("q1", ("s0",)))
        assert not psa.accepts(PDSState("q2", ("s1", "s0")))

    def test_empty_stack_config(self):
        pds = fig7_pds()
        psa = psa_for_configs(pds, [PDSState("q1", ())])
        assert psa.accepts(PDSState("q1", ()))
        assert not psa.accepts(PDSState("q0", ()))

    def test_accepts_pair_form(self):
        pds = fig7_pds()
        psa = psa_for_configs(pds, [("q0", ("s0",))])
        assert psa.accepts_config("q0", ("s0",))

    def test_unknown_shared_state_rejected(self):
        with pytest.raises(ModelError):
            psa_for_configs(fig7_pds(), [PDSState("zz", ())])


class TestPostStarFig7:
    def test_matches_explicit_on_finite_prefix(self):
        pds = fig7_pds()
        start = PDSState("q0", ("s0",))
        psa = post_star(pds, psa_for_configs(pds, [start]))
        # The reachable set is infinite; compare against explicit search
        # truncated by steps: every explicitly reached state is accepted.
        frontier = {start}
        seen = {start}
        from repro.pds import successors

        for _round in range(8):
            nxt = set()
            for state in frontier:
                for _a, succ in successors(pds, state):
                    if succ not in seen:
                        nxt.add(succ)
            seen |= nxt
            frontier = nxt
        for state in seen:
            assert psa.accepts(state), f"missing {state}"

    def test_accepts_pumped_stacks(self):
        # ⟨q0|s0^n⟩ is reachable for every n ≥ 1 (pop after push cycle).
        pds = fig7_pds()
        psa = reachable_set_psa(pds, start_stack=("s0",))
        for n in (1, 2, 3, 5):
            assert psa.accepts(PDSState("q0", ("s0",) * n))

    def test_rejects_unreachable_states(self):
        pds = fig7_pds()
        psa = reachable_set_psa(pds, start_stack=("s0",))
        assert not psa.accepts(PDSState("q0", ()))  # stack never empties fully
        assert not psa.accepts(PDSState("q1", ("s0",)))
        assert not psa.accepts(PDSState("q2", ("s1", "s0")))

    def test_language_is_infinite(self):
        pds = fig7_pds()
        psa = reachable_set_psa(pds, start_stack=("s0",))
        assert not psa.language_is_finite()
        assert psa.has_loop()


class TestEmptyStackRules:
    def test_empty_push_fires_only_when_empty_reachable(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, None, 1, ("a",))
        psa = post_star(pds)  # initial ⟨0|ε⟩
        assert psa.accepts(PDSState(0, ()))
        assert psa.accepts(PDSState(1, ("a",)))
        assert not psa.accepts(PDSState(1, ()))

    def test_empty_overwrite_chains(self):
        pds = PDS(initial_shared=0, shared_states={0, 1, 2})
        pds.rule(0, None, 1, ())
        pds.rule(1, None, 2, ())
        psa = post_star(pds)
        assert psa.accepts(PDSState(2, ()))

    def test_pop_then_empty_push_interaction(self):
        # Pop empties the stack, then an empty-push restarts it.
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ())        # pop
        pds.rule(1, None, 0, ("a",))   # empty push back
        start = psa_for_configs(pds, [PDSState(0, ("a",))])
        psa = post_star(pds, start)
        assert psa.accepts(PDSState(1, ()))
        assert psa.accepts(PDSState(0, ("a",)))
        explicit = post_star_explicit(pds, PDSState(0, ("a",)))
        assert explicit == {PDSState(0, ("a",)), PDSState(1, ())}

    def test_pop_below_initial_stack(self):
        # Stack of size 2: pops twice, shared state records the count.
        pds = PDS(initial_shared=0, shared_states={0, 1, 2})
        pds.rule(0, "a", 1, ())
        pds.rule(1, "a", 2, ())
        psa = post_star(pds, psa_for_configs(pds, [PDSState(0, ("a", "a"))]))
        assert psa.accepts(PDSState(1, ("a",)))
        assert psa.accepts(PDSState(2, ()))
        assert not psa.accepts(PDSState(2, ("a",)))


class TestPreconditions:
    def test_transition_into_control_state_rejected(self):
        pds = fig7_pds()
        nfa = NFA(states=pds.shared_states, accepting=["f"])
        nfa.add_transition("q0", "s0", "q1")  # illegal: into control state
        with pytest.raises(ModelError):
            post_star(pds, PSA(nfa, pds.shared_states))

    def test_accepting_control_state_rejected(self):
        pds = fig7_pds()
        nfa = NFA(states=pds.shared_states, accepting=["q0"])
        with pytest.raises(ModelError):
            post_star(pds, PSA(nfa, pds.shared_states))


class TestTops:
    def test_tops_of_fig7(self):
        pds = fig7_pds()
        psa = reachable_set_psa(pds, start_stack=("s0",))
        assert psa.tops("q0") == frozenset({"s0", "s1"})
        assert psa.tops("q1") == frozenset({"s1"})
        assert psa.tops("q2") == frozenset({"s2"})

    def test_tops_includes_empty(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ())
        psa = post_star(pds, psa_for_configs(pds, [PDSState(0, ("a",))]))
        assert EMPTY in psa.tops(1)
        assert psa.tops(0) == frozenset({"a"})

    def test_tops_unknown_control(self):
        pds = fig7_pds()
        psa = reachable_set_psa(pds, start_stack=("s0",))
        assert psa.tops("nope") == frozenset()

    def test_visible_states(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ())
        psa = post_star(pds, psa_for_configs(pds, [PDSState(0, ("a",))]))
        assert set(psa.visible_states()) == {(0, "a"), (1, EMPTY)}


class TestShallowConfigs:
    def test_fig7_shallow_set_is_infinite(self):
        # Fig. 7 has genuine pumping: R(Q×Σ≤1) is infinite.
        psa = shallow_configs_psa(fig7_pds())
        assert not psa.language_is_finite()

    def test_finite_program_shallow_set_finite(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ("b",))
        pds.rule(1, "b", 0, ())
        psa = shallow_configs_psa(pds)
        assert psa.language_is_finite()


# ---------------------------------------------------------------------------
# Property-based cross-validation: post* == explicit reachability whenever
# the reachable set is finite.
# ---------------------------------------------------------------------------

SYMBOLS = ("a", "b")
SHARED = (0, 1)


@st.composite
def random_pds(draw):
    pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
    n_rules = draw(st.integers(min_value=1, max_value=7))
    for _ in range(n_rules):
        src = draw(st.sampled_from(SHARED))
        dst = draw(st.sampled_from(SHARED))
        read = draw(st.sampled_from([None, "a", "b"]))
        if read is None:
            write = draw(st.sampled_from([(), ("a",), ("b",)]))
        else:
            write = draw(
                st.sampled_from(
                    [(), ("a",), ("b",), ("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]
                )
            )
        pds.rule(src, read, dst, write)
    stack = tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2)))
    return pds, PDSState(0, stack)


@settings(max_examples=120, deadline=None)
@given(random_pds())
def test_post_star_equals_explicit_when_finite(case):
    pds, start = case
    try:
        explicit = post_star_explicit(pds, start, max_states=1500)
    except ContextExplosionError:
        assume(False)  # divergent instance: skip
        return
    psa = post_star(pds, psa_for_configs(pds, [start]))
    max_stack = max((s.stack_size for s in explicit), default=0)
    symbolic = set(psa.enumerate_states(max_stack + 2))
    assert symbolic == explicit


@settings(max_examples=60, deadline=None)
@given(random_pds())
def test_post_star_complete_on_step_bounded_prefix(case):
    """Even for divergent instances: explicit N-step reach ⊆ L(post*)."""
    from repro.pds import successors

    pds, start = case
    psa = post_star(pds, psa_for_configs(pds, [start]))
    seen = {start}
    frontier = {start}
    for _ in range(6):
        nxt = set()
        for state in frontier:
            for _a, succ in successors(pds, state):
                if succ not in seen:
                    nxt.add(succ)
        seen |= nxt
        frontier = nxt
    for state in seen:
        assert psa.accepts(state)


@settings(max_examples=60, deadline=None)
@given(random_pds())
def test_finiteness_verdict_matches_explicit_guard(case):
    """If the PSA says the language is finite, explicit search terminates."""
    pds, start = case
    psa = post_star(pds, psa_for_configs(pds, [start]))
    if psa.language_is_finite():
        explicit = post_star_explicit(pds, start, max_states=100_000)
        max_stack = max((s.stack_size for s in explicit), default=0)
        assert set(psa.enumerate_states(max_stack + 1)) == explicit


class TestWarmStartAfterPdsMutation:
    """Rules (and shared states) added to the PDS between saturations
    must be visible to the next warm start — the engine re-fetches the
    version-cached trigger index per drain instead of freezing it at
    construction."""

    def test_late_rule_fires_on_warm_start(self):
        from repro.pds.pds import PDS
        from repro.pds.saturation import PostStarEngine, post_star_naive

        pds = PDS(0)
        pds.rule(0, "a", 1, ["a"])
        engine = PostStarEngine(pds, psa_for_configs(pds, [PDSState(0, ("a",))]))
        engine.drain()
        pds.rule(1, "b", 2, [])  # new rule + new shared state 2
        engine.add_config(PDSState(1, ("b",)))
        warm = engine.saturate()
        oracle = post_star_naive(
            pds,
            psa_for_configs(pds, [PDSState(0, ("a",)), PDSState(1, ("b",))]),
        )
        assert warm.accepts_config(2, ())
        assert oracle.accepts_config(2, ())
        assert warm.tops(2) == oracle.tops(2)
