"""Tests for pre* saturation (backward reachability).

``pre_star`` is the worklist formulation (PostStarEngine pattern);
``pre_star_naive`` is the seed sweep kept as the differential oracle.
The randomized equivalence suite below compares the two *per entry
state* on full languages (canonical minimal-DFA signatures), which is
strictly stronger than membership sampling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.canonical import canonical_signature
from repro.pds import (
    PDS,
    PDSState,
    post_star,
    pre_star,
    pre_star_naive,
    psa_for_configs,
)
from repro.util.meter import scoped


def fig7_pds():
    pds = PDS(initial_shared="q0")
    pds.rule("q0", "s0", "q1", ("s1", "s0"))
    pds.rule("q1", "s1", "q2", ("s2", "s0"))
    pds.rule("q2", "s2", "q0", ("s1",))
    pds.rule("q0", "s1", "q0", ())
    return pds


class TestPreStarFig7:
    def test_predecessors_of_intermediate_state(self):
        pds = fig7_pds()
        target = PDSState("q1", ("s1", "s0"))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        assert pre.accepts(target)                       # reflexive
        assert pre.accepts(PDSState("q0", ("s0",)))      # one push away
        # The cycle makes even "downstream" states predecessors again:
        assert pre.accepts(PDSState("q2", ("s2", "s0")))
        # ⟨q1|s0⟩ is stuck (no rule for (q1, s0)): not a predecessor.
        assert not pre.accepts(PDSState("q1", ("s0",)))

    def test_predecessors_through_pop(self):
        pds = fig7_pds()
        target = PDSState("q0", ("s0", "s0"))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        # ⟨q0|s1 s0 s0⟩ pops to the target.
        assert pre.accepts(PDSState("q0", ("s1", "s0", "s0")))
        # and the full cycle from ⟨q0|s0⟩ reaches it as well.
        assert pre.accepts(PDSState("q0", ("s0",)))

    def test_default_target_is_initial_state(self):
        pds = fig7_pds()
        pre = pre_star(pds)
        assert pre.accepts(PDSState("q0", ()))


class TestEmptyStackRules:
    def test_empty_push_pre_image(self):
        pds = PDS(initial_shared=0, shared_states={0, 1})
        pds.rule(0, None, 1, ("a",))
        target = PDSState(1, ("a",))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        assert pre.accepts(PDSState(0, ()))

    def test_empty_overwrite_chain(self):
        pds = PDS(initial_shared=0, shared_states={0, 1, 2})
        pds.rule(0, None, 1, ())
        pds.rule(1, None, 2, ())
        pre = pre_star(pds, psa_for_configs(pds, [PDSState(2, ())]))
        assert pre.accepts(PDSState(0, ()))
        assert pre.accepts(PDSState(1, ()))


SYMBOLS = ("a", "b")
SHARED = (0, 1)


@st.composite
def random_pds_and_pair(draw):
    pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
    for _ in range(draw(st.integers(min_value=1, max_value=7))):
        read = draw(st.sampled_from([None, "a", "b"]))
        if read is None:
            write = draw(st.sampled_from([(), ("a",), ("b",)]))
        else:
            write = draw(
                st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("b", "a")])
            )
        pds.rule(
            draw(st.sampled_from(SHARED)), read, draw(st.sampled_from(SHARED)), write
        )
    source = PDSState(
        draw(st.sampled_from(SHARED)),
        tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2))),
    )
    target = PDSState(
        draw(st.sampled_from(SHARED)),
        tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2))),
    )
    return pds, source, target


@settings(max_examples=120, deadline=None)
@given(random_pds_and_pair())
def test_pre_post_duality(case):
    """target ∈ post*({source})  ⟺  source ∈ pre*({target})."""
    pds, source, target = case
    forward = post_star(pds, psa_for_configs(pds, [source]))
    backward = pre_star(pds, psa_for_configs(pds, [target]))
    assert forward.accepts(target) == backward.accepts(source)


def _entry_signatures(psa, pds):
    """Language fingerprint of a pre*/post* PSA: one canonical signature
    per control state (the automaton's edge sets may legitimately differ
    between formulations; the accepted languages must not)."""
    table = pds.symbol_table()
    return {
        shared: canonical_signature(psa.automaton, table, initial=[shared])
        for shared in pds.shared_states
    }


class TestWorklistMatchesSweepOracle:
    @settings(max_examples=150, deadline=None)
    @given(random_pds_and_pair())
    def test_languages_equal_per_control(self, case):
        pds, _source, target = case
        worklist = pre_star(pds, psa_for_configs(pds, [target]))
        sweep = pre_star_naive(pds, psa_for_configs(pds, [target]))
        assert _entry_signatures(worklist, pds) == _entry_signatures(sweep, pds)

    @settings(max_examples=60, deadline=None)
    @given(random_pds_and_pair(), st.lists(st.sampled_from(SYMBOLS), max_size=3))
    def test_membership_agrees_on_random_configs(self, case, stack):
        pds, _source, target = case
        worklist = pre_star(pds, psa_for_configs(pds, [target]))
        sweep = pre_star_naive(pds, psa_for_configs(pds, [target]))
        for shared in SHARED:
            probe = PDSState(shared, tuple(stack))
            assert worklist.accepts(probe) == sweep.accepts(probe)

    def test_meter_counters_move(self):
        pds = fig7_pds()
        target = PDSState("q1", ("s1", "s0"))
        with scoped() as work:
            pre_star(pds, psa_for_configs(pds, [target]))
            pre_star_naive(pds, psa_for_configs(pds, [target]))
        assert work.get("pre_star.edges_added", 0) > 0
        assert work.get("pre_star.rule_applications", 0) > 0
        # The oracle needs a final no-change sweep; the worklist none.
        assert work.get("pre_star_naive.sweeps", 0) >= 2
