"""Tests for pre* saturation (backward reachability)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pds import PDS, PDSState, post_star, pre_star, psa_for_configs


def fig7_pds():
    pds = PDS(initial_shared="q0")
    pds.rule("q0", "s0", "q1", ("s1", "s0"))
    pds.rule("q1", "s1", "q2", ("s2", "s0"))
    pds.rule("q2", "s2", "q0", ("s1",))
    pds.rule("q0", "s1", "q0", ())
    return pds


class TestPreStarFig7:
    def test_predecessors_of_intermediate_state(self):
        pds = fig7_pds()
        target = PDSState("q1", ("s1", "s0"))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        assert pre.accepts(target)                       # reflexive
        assert pre.accepts(PDSState("q0", ("s0",)))      # one push away
        # The cycle makes even "downstream" states predecessors again:
        assert pre.accepts(PDSState("q2", ("s2", "s0")))
        # ⟨q1|s0⟩ is stuck (no rule for (q1, s0)): not a predecessor.
        assert not pre.accepts(PDSState("q1", ("s0",)))

    def test_predecessors_through_pop(self):
        pds = fig7_pds()
        target = PDSState("q0", ("s0", "s0"))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        # ⟨q0|s1 s0 s0⟩ pops to the target.
        assert pre.accepts(PDSState("q0", ("s1", "s0", "s0")))
        # and the full cycle from ⟨q0|s0⟩ reaches it as well.
        assert pre.accepts(PDSState("q0", ("s0",)))

    def test_default_target_is_initial_state(self):
        pds = fig7_pds()
        pre = pre_star(pds)
        assert pre.accepts(PDSState("q0", ()))


class TestEmptyStackRules:
    def test_empty_push_pre_image(self):
        pds = PDS(initial_shared=0, shared_states={0, 1})
        pds.rule(0, None, 1, ("a",))
        target = PDSState(1, ("a",))
        pre = pre_star(pds, psa_for_configs(pds, [target]))
        assert pre.accepts(PDSState(0, ()))

    def test_empty_overwrite_chain(self):
        pds = PDS(initial_shared=0, shared_states={0, 1, 2})
        pds.rule(0, None, 1, ())
        pds.rule(1, None, 2, ())
        pre = pre_star(pds, psa_for_configs(pds, [PDSState(2, ())]))
        assert pre.accepts(PDSState(0, ()))
        assert pre.accepts(PDSState(1, ()))


SYMBOLS = ("a", "b")
SHARED = (0, 1)


@st.composite
def random_pds_and_pair(draw):
    pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
    for _ in range(draw(st.integers(min_value=1, max_value=7))):
        read = draw(st.sampled_from([None, "a", "b"]))
        if read is None:
            write = draw(st.sampled_from([(), ("a",), ("b",)]))
        else:
            write = draw(
                st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("b", "a")])
            )
        pds.rule(
            draw(st.sampled_from(SHARED)), read, draw(st.sampled_from(SHARED)), write
        )
    source = PDSState(
        draw(st.sampled_from(SHARED)),
        tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2))),
    )
    target = PDSState(
        draw(st.sampled_from(SHARED)),
        tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=2))),
    )
    return pds, source, target


@settings(max_examples=120, deadline=None)
@given(random_pds_and_pair())
def test_pre_post_duality(case):
    """target ∈ post*({source})  ⟺  source ∈ pre*({target})."""
    pds, source, target = case
    forward = post_star(pds, psa_for_configs(pds, [source]))
    backward = pre_star(pds, psa_for_configs(pds, [target]))
    assert forward.accepts(target) == backward.accepts(source)
