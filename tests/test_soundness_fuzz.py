"""Soundness fuzzing of the CUBA verdicts on random systems.

The strongest correctness statement we can test: whenever an algorithm
answers SAFE at bound ``k``, exploring several more contexts must reveal
no new visible state (Alg. 3's collapse claim) and certainly no
violation; whenever it answers UNSAFE, the reported witness must be a
genuinely reachable visible state at the reported bound.

These tests use the seeded generator (:mod:`repro.models.random_gen`)
rather than hypothesis so the corpus is stable across runs.
"""

import pytest

from repro.core import Verdict, VisiblePredicate
from repro.cuba import algorithm3, quick_check, scheme1_sk
from repro.models import RandomSpec, random_cpds
from repro.reach import SymbolicReach

#: Seeds with a mix of pushy/non-pushy shapes.
SEEDS = list(range(40))
SPEC = RandomSpec(n_threads=2, rules_per_thread=5, push_bias=0.25)

#: Extra contexts explored beyond a claimed collapse.
SLACK = 4


def _target_property(cpds):
    """A property that is sometimes safe, sometimes not: shared state 1
    never reached while both threads still hold a stack."""
    def is_bad(visible):
        return visible.shared == 1 and all(top is not None for top in visible.tops)

    return VisiblePredicate(is_bad, "shared 1 with all stacks nonempty")


@pytest.mark.parametrize("seed", SEEDS)
def test_algorithm3_verdicts_sound(seed):
    cpds = random_cpds(seed, SPEC)
    prop = _target_property(cpds)
    result = algorithm3(cpds, prop, engine="symbolic", max_rounds=8)

    if result.verdict is Verdict.SAFE:
        probe = SymbolicReach(cpds)
        probe.ensure_level(result.bound + SLACK)
        collapsed = probe.visible_up_to(result.bound)
        assert probe.visible_up_to() == collapsed, (
            f"seed {seed}: SAFE at {result.bound} but T keeps growing"
        )
        assert prop.find_violation(probe.visible_up_to()) is None
    elif result.verdict is Verdict.UNSAFE:
        probe = SymbolicReach(cpds)
        probe.ensure_level(result.bound)
        assert result.witness in probe.visible_up_to(result.bound), (
            f"seed {seed}: UNSAFE witness not reachable at bound {result.bound}"
        )
        if result.bound > 0:
            assert result.witness not in probe.visible_up_to(result.bound - 1), (
                f"seed {seed}: bound {result.bound} not minimal"
            )


@pytest.mark.parametrize("seed", SEEDS[:20])
def test_scheme1_sk_collapse_claims_sound(seed):
    cpds = random_cpds(seed, SPEC)
    prop = _target_property(cpds)
    result = scheme1_sk(cpds, prop, max_rounds=8)
    if result.verdict is not Verdict.SAFE:
        pytest.skip("no collapse within budget for this seed")
    probe = SymbolicReach(cpds)
    probe.ensure_level(result.bound + SLACK)
    assert probe.visible_up_to() == probe.visible_up_to(result.bound)


@pytest.mark.parametrize("seed", SEEDS[:20])
def test_quick_check_safe_is_sound(seed):
    cpds = random_cpds(seed, SPEC)
    prop = _target_property(cpds)
    result = quick_check(cpds, prop)
    if result.verdict is not Verdict.SAFE:
        assert result.verdict is Verdict.UNKNOWN  # never UNSAFE
        return
    # Z-certified safety must survive real exploration.
    probe = SymbolicReach(cpds)
    probe.ensure_level(6)
    assert prop.find_violation(probe.visible_up_to()) is None


def test_corpus_exercises_both_verdicts():
    """The fuzz corpus is only meaningful if it hits SAFE and UNSAFE."""
    verdicts = set()
    for seed in SEEDS:
        cpds = random_cpds(seed, SPEC)
        result = algorithm3(cpds, _target_property(cpds), engine="symbolic", max_rounds=8)
        verdicts.add(result.verdict)
    assert Verdict.SAFE in verdicts
    assert Verdict.UNSAFE in verdicts
