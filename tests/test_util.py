"""Tests for measurement and table utilities."""

import time

from repro.util import Measurement, measure, render_table


class TestMeasure:
    def test_returns_value(self):
        outcome = measure(lambda: 42)
        assert outcome.value == 42

    def test_times_the_call(self):
        outcome = measure(lambda: time.sleep(0.05))
        assert outcome.seconds >= 0.04

    def test_tracks_peak_memory(self):
        outcome = measure(lambda: [0] * 500_000)
        assert outcome.peak_mb > 1.0

    def test_str_format(self):
        text = str(Measurement(None, 1.234, 5.678))
        assert text == "1.23s / 5.68MB"

    def test_nested_measure(self):
        outer = measure(lambda: measure(lambda: [0] * 100_000))
        assert outer.value.peak_mb > 0


class TestRenderTable:
    def test_alignment(self):
        table = render_table(["a", "long"], [[1, 2], ["wider", 3]])
        lines = table.splitlines()
        assert lines[0].startswith("a    ")
        assert lines[1].startswith("-----")
        assert "wider" in lines[3]

    def test_separator_matches_width(self):
        table = render_table(["col"], [["wide value"]])
        header, sep, row = table.splitlines()
        assert len(sep) == len("wide value")

    def test_empty_rows(self):
        table = render_table(["x", "y"], [])
        assert table.splitlines()[0] == "x  y"

    def test_values_stringified(self):
        table = render_table(["n"], [[None], [1.5]])
        assert "None" in table and "1.5" in table
