"""Unit tests for safety property classes."""

from repro.core import AlwaysSafe, MutualExclusion, SharedStateReachability, VisiblePredicate
from repro.cpds import VisibleState
from repro.pds import EMPTY


def vs(shared, *tops):
    return VisibleState(shared, tuple(tops))


class TestSharedStateReachability:
    def test_violated_by_bad_shared(self):
        prop = SharedStateReachability({"err"})
        assert prop.violated_by(vs("err", 1, 2))
        assert not prop.violated_by(vs("ok", 1, 2))

    def test_find_violation_returns_first(self):
        prop = SharedStateReachability({9})
        found = prop.find_violation([vs(0, 1), vs(9, 2), vs(9, 3)])
        assert found == vs(9, 2)

    def test_find_violation_none(self):
        prop = SharedStateReachability({9})
        assert prop.find_violation([vs(0, 1), vs(1, 2)]) is None

    def test_describe_lists_states(self):
        assert "err" in SharedStateReachability({"err"}).describe()


class TestMutualExclusion:
    def test_two_threads_in_critical(self):
        prop = MutualExclusion({0: {"cs"}, 1: {"cs"}})
        assert prop.violated_by(vs(0, "cs", "cs"))

    def test_one_thread_alone_is_fine(self):
        prop = MutualExclusion({0: {"cs"}, 1: {"cs"}})
        assert not prop.violated_by(vs(0, "cs", "idle"))
        assert not prop.violated_by(vs(0, "idle", "cs"))

    def test_different_critical_symbols(self):
        prop = MutualExclusion({0: {5}, 1: {9}})
        assert prop.violated_by(vs(1, 5, 9))
        assert not prop.violated_by(vs(1, 5, 8))

    def test_empty_top_never_critical(self):
        prop = MutualExclusion({0: {5}, 1: {9}})
        assert not prop.violated_by(vs(0, EMPTY, 9))

    def test_three_thread_quorum(self):
        prop = MutualExclusion({0: {"c"}, 1: {"c"}, 2: {"c"}})
        assert prop.violated_by(vs(0, "c", "c", "idle"))
        assert not prop.violated_by(vs(0, "c", "idle", "idle"))


class TestVisiblePredicate:
    def test_custom_predicate(self):
        prop = VisiblePredicate(lambda v: v.tops[0] == "boom", "no boom")
        assert prop.violated_by(vs(0, "boom"))
        assert not prop.violated_by(vs(0, "calm"))
        assert prop.describe() == "no boom"


class TestAlwaysSafe:
    def test_never_violated(self):
        prop = AlwaysSafe()
        assert not prop.violated_by(vs("anything", 1, EMPTY))
        assert prop.find_violation([vs(0, 1)]) is None
