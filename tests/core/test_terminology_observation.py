"""Tests for Table 1 terminology helpers and the generic Scheme 1."""

import pytest

from repro.core import (
    AlwaysSafe,
    ObservationSequence,
    SharedStateReachability,
    Verdict,
    collapses_at,
    first_plateau,
    is_monotone,
    plateaus_at,
    run_scheme1,
    stutters_at,
)
from repro.cpds import VisibleState

# A stuttering prefix mirroring Fig. 1's T-sequence sizes: grows, pauses
# at index 2, grows again, then stays flat.
STUTTER = [{0}, {0, 1}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}]


class TestTerminology:
    def test_is_monotone(self):
        assert is_monotone(STUTTER)
        assert not is_monotone([{0, 1}, {0}])

    def test_plateaus(self):
        assert plateaus_at(STUTTER, 2)
        assert not plateaus_at(STUTTER, 1)
        assert plateaus_at(STUTTER, 4)

    def test_plateau_bounds_checked(self):
        with pytest.raises(IndexError):
            plateaus_at(STUTTER, len(STUTTER) - 1)

    def test_stutters(self):
        assert stutters_at(STUTTER, 2)  # grows again at index 4
        assert not stutters_at(STUTTER, 4)  # flat to the end of prefix
        assert not stutters_at(STUTTER, 0)  # not even a plateau

    def test_collapses(self):
        assert collapses_at(STUTTER, 4)
        assert not collapses_at(STUTTER, 2)
        assert collapses_at(STUTTER, len(STUTTER) - 1)

    def test_collapse_bounds_checked(self):
        with pytest.raises(IndexError):
            collapses_at(STUTTER, 99)

    def test_first_plateau(self):
        assert first_plateau(STUTTER) == 3  # O2 == O3 detected at k=3
        assert first_plateau([{0}, {1, 0}]) is None


class FakeSequence(ObservationSequence):
    """Scripted observation sequence for driving Scheme 1."""

    def __init__(self, observations):
        self.observations = observations
        self._k = 0

    @property
    def k(self):
        return self._k

    def advance(self):
        self._k = min(self._k + 1, len(self.observations) - 1)

    def equals_previous(self):
        return (
            self._k >= 1
            and self.observations[self._k] == self.observations[self._k - 1]
        )

    def find_violation(self, prop):
        return prop.find_violation(self.observations[self._k])


def vs(shared):
    return VisibleState(shared, (1,))


class TestRunScheme1:
    def test_safe_on_plateau(self):
        seq = FakeSequence([{vs(0)}, {vs(0), vs(1)}, {vs(0), vs(1)}])
        result = run_scheme1(seq, AlwaysSafe())
        assert result.verdict is Verdict.SAFE
        assert result.bound == 2

    def test_unsafe_detected_at_first_bad_round(self):
        seq = FakeSequence([{vs(0)}, {vs(0), vs(9)}, {vs(0), vs(9)}])
        result = run_scheme1(seq, SharedStateReachability({9}))
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 1
        assert result.witness == vs(9)

    def test_unsafe_at_k0(self):
        seq = FakeSequence([{vs(9)}])
        result = run_scheme1(seq, SharedStateReachability({9}))
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 0

    def test_unknown_when_budget_exhausted(self):
        growing = [{vs(i) for i in range(n + 1)} for n in range(10)]
        result = run_scheme1(FakeSequence(growing), AlwaysSafe(), max_rounds=3)
        assert result.verdict is Verdict.UNKNOWN
        assert not result.conclusive
