"""Fault injection for the process-pool engine executor (PR 6).

The worker-side entry point is swapped for a dispatcher defined in this
module: the pool is spawned lazily (fork) at the first submission, so
the child inherits the monkeypatched module state, and pickling the
dispatcher by reference resolves in the child because the test module
is already imported there.  Faulty behavior is keyed on sentinel
``max_rounds`` budgets so recovery submissions in the same test (with
ordinary budgets) reach the real worker entry point.

Scenarios, each of which must resolve cleanly — never a hung run or a
poisoned parent cache:

* a worker SIGKILLed mid-run → :class:`~repro.errors.CubaError`, broken
  pool retired, nothing stored, the job re-runnable on a fresh pool;
* a corrupt snapshot blob in the worker's reply → the verdict is kept,
  the blob is dropped (``service.ipc_snapshot_rejects``), the store
  entry has no snapshot, and a deeper resubmission simply runs fresh;
* a worker raising :class:`~repro.errors.ContextExplosionError` → the
  exception crosses the process boundary with its type intact, in-flight
  dedup is cleared, and the pool keeps serving.
"""

import os
import signal
import threading
import time

import pytest

from repro.errors import ContextExplosionError, CubaError
from repro.models.dekker import dekker_source
from repro.service import AnalysisRequest, AnalysisService, AnalysisStore
from repro.service import executor as executor_mod
from repro.service.executor import _execute_in_worker as _real_worker
from repro.util.meter import scoped

DEKKER = dekker_source()

# Sentinel budgets routing a job to an injected fault (any real analysis
# in these tests uses budgets outside this range).
HANG_ROUNDS = 97
EXPLODE_ROUNDS = 96
CORRUPT_ROUNDS = 2  # must be genuinely shallow: the job needs a snapshot

_HANG_SENTINEL = ""


def _dispatch_worker(job):
    if job.max_rounds == HANG_ROUNDS:
        with open(_HANG_SENTINEL, "w") as sentinel:
            sentinel.write("started")
        time.sleep(600)  # parked until the test SIGKILLs this process
    if job.max_rounds == EXPLODE_ROUNDS:
        raise ContextExplosionError("injected worker divergence")
    outcome = _real_worker(job)
    if job.max_rounds == CORRUPT_ROUNDS:
        outcome.snapshot = b"CUSN then garbage that must never be stored"
    return outcome


@pytest.fixture
def service(tmp_path, monkeypatch):
    monkeypatch.setattr(executor_mod, "_execute_in_worker", _dispatch_worker)
    service = AnalysisService(
        AnalysisStore(tmp_path / "faults.sqlite"), workers=2, executor="process"
    )
    yield service
    service.close()


class TestKilledWorker:
    def test_sigkill_mid_run_is_a_clean_retriable_error(
        self, service, tmp_path
    ):
        global _HANG_SENTINEL
        sentinel = tmp_path / "worker-started"
        _HANG_SENTINEL = str(sentinel)
        request = AnalysisRequest(
            bp_text=DEKKER, engine="explicit", max_rounds=HANG_ROUNDS
        )
        failures = []
        runner = threading.Thread(
            target=lambda: failures.append(_capture(service, request))
        )
        runner.start()
        deadline = time.monotonic() + 30
        while not sentinel.exists():
            assert time.monotonic() < deadline, "worker never started"
            time.sleep(0.02)
        pool = service._engine_executor._pool
        for process in list(pool._processes.values()):
            os.kill(process.pid, signal.SIGKILL)
        runner.join(timeout=30)
        assert not runner.is_alive(), "run() hung after the worker died"

        (failure,) = failures
        assert isinstance(failure, CubaError)
        assert "worker" in str(failure) and "resubmit" in str(failure)
        # Nothing recorded: the parent cache is not poisoned.
        problem, _cpds, _prop = service.prepare(request)
        assert service.store.get(problem) is None
        # The broken pool was retired (PR 4 eviction semantics) ...
        assert service._engine_executor._pool is None
        # ... in-flight was cleared, and the job is re-runnable: the
        # next submission spawns a fresh pool and completes.
        with scoped() as work:
            response = service.run(
                AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=25)
            )
        assert response["verdict"] == "safe"
        assert work.get("service.engine_runs") == 1
        assert service._engine_executor._pool is not None
        assert service.store.get(problem) is not None


class TestCorruptReplyBlob:
    def test_bad_snapshot_loses_the_blob_never_the_verdict(self, service):
        shallow = AnalysisRequest(
            bp_text=DEKKER, engine="explicit", max_rounds=CORRUPT_ROUNDS
        )
        with scoped() as work:
            first = service.run(shallow)
        assert first["verdict"] == "unknown" and not first["final"]
        assert work.get("service.ipc_snapshot_rejects") == 1
        # The store kept the verdict but never saw the corrupt blob.
        entry = service.store.get(first["fingerprint"])
        assert entry is not None and not entry.has_snapshot
        # A deeper resubmission has nothing to resume from: it runs
        # fresh, cleanly, with no stored-snapshot rejects.
        with scoped() as deep_work:
            second = service.run(
                AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=25)
            )
        assert second["verdict"] == "safe" and not second["resumed"]
        assert deep_work.get("service.snapshot_rejects", 0) == 0
        assert deep_work.get("service.ipc_snapshot_rejects", 0) == 0


class TestWorkerRaisedExplosion:
    def test_explosion_crosses_the_process_boundary_typed(self, service):
        request = AnalysisRequest(
            bp_text=DEKKER, engine="explicit", max_rounds=EXPLODE_ROUNDS
        )
        with pytest.raises(ContextExplosionError, match="injected"):
            service.run(request)
        # The pool survived (an exception is not a crash) and in-flight
        # was cleared: the same fingerprint resolves on resubmission.
        pool = service._engine_executor._pool
        assert pool is not None
        with scoped() as work:
            response = service.run(
                AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=25)
            )
        assert response["verdict"] == "safe"
        assert work.get("service.engine_runs") == 1
        assert service._engine_executor._pool is pool

    def test_concurrent_joiner_sees_the_failure_not_a_hang(self, service):
        """A dedup joiner on a failing run gets the failure propagated
        (the in-flight future carries it) instead of waiting forever."""
        request = AnalysisRequest(
            bp_text=DEKKER, engine="explicit", max_rounds=EXPLODE_ROUNDS
        )
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda: outcomes.append(_capture(service, request))
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()
        assert len(outcomes) == 2
        assert all(
            isinstance(outcome, ContextExplosionError) for outcome in outcomes
        )


class TestExecutorLifecycle:
    def test_closed_executor_refuses_cleanly(self, tmp_path):
        from repro.service.executor import EngineJob, ProcessAnalysisExecutor

        executor = ProcessAnalysisExecutor(workers=1)
        executor.close()
        with pytest.raises(CubaError, match="shut down"):
            executor.run(EngineJob(cpds=None, prop=None, problem="x"))

    def test_worker_count_is_validated(self):
        from repro.service.executor import ProcessAnalysisExecutor

        with pytest.raises(ValueError):
            ProcessAnalysisExecutor(workers=0)

    def test_executor_mode_is_validated(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            AnalysisService(
                AnalysisStore(tmp_path / "bad.sqlite"), executor="carrier-pigeon"
            )


def _capture(service, request):
    try:
        return service.run(request)
    except BaseException as failure:
        return failure
