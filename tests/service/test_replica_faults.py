"""Replica fault battery (PR 7).

What a multi-replica deployment must survive, each injected for real:

* a replica **SIGKILLed mid-write** — WAL recovery on the next open,
  never a corrupt-rotation of a healthy file;
* two replicas **racing a resume** — eviction never frees a snapshot
  blob under a live lease (``store.eviction_lease_skips``), a crashed
  peer's lease is reaped after its TTL instead of wedging eviction;
* a **corrupt store** — bad row JSON degrades to a miss, a
  wholesale-corrupt file is rotated aside and peers keep working;
* an **unusable store location** — ``cuba serve`` logs and continues in
  degraded store-less mode (``/health`` says so) instead of
  crash-looping.
"""

import os
import signal
import socket
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

from repro.service.store import (
    AnalysisStore,
    DegradedAnalysisStore,
    open_store,
)
from repro.util.meter import METER

SRC = Path(__file__).resolve().parents[2] / "src"

#: Endless-writer child for the SIGKILL test: prints one line once the
#: store is open, then upserts snapshot-bearing rows until killed.
_ENDLESS_WRITER = """
import sys
from repro.service.store import AnalysisStore

store = AnalysisStore(sys.argv[1])
print("ready", flush=True)
i = 0
while True:
    store.record(
        f"kill-{i % 16}", {"n": i}, bound=i, engine="explicit",
        snapshot=bytes(4096),
    )
    i += 1
"""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_sigkill_mid_write_recovers_via_wal(tmp_path):
    path = tmp_path / "store.sqlite"
    proc = subprocess.Popen(
        [sys.executable, "-c", _ENDLESS_WRITER, str(path)],
        env=_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(0.4)  # let it write mid-stream
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    # The survivor opens the same file: WAL recovery, not rotation.
    before = METER.snapshot()
    store = AnalysisStore(path)
    assert not path.with_name(path.name + ".corrupt").exists()
    assert METER.delta(before).get("service.store_corrupt_rotations", 0) == 0
    stats = store.stats()
    assert stats["open"] and stats["entries"] >= 1
    # Every surviving row is whole (committed transactions only).
    for i in range(16):
        entry = store.get(f"kill-{i}")
        if entry is not None and entry.result is not None:
            assert entry.result["n"] % 16 == i
    store.record("after-crash", {"n": -1}, bound=0, engine="explicit")
    assert store.get("after-crash").result == {"n": -1}
    store.close()


class TestLeaseRace:
    def test_live_lease_pins_blob_against_peer_eviction(self, tmp_path):
        path = tmp_path / "store.sqlite"
        resuming = AnalysisStore(path, max_snapshot_bytes=4096)
        evicting = AnalysisStore(path, max_snapshot_bytes=4096)
        resuming.record("hot", {"verdict": "unknown"}, bound=1,
                        engine="explicit", snapshot=bytes(3000))
        token = resuming.acquire_lease("hot")
        assert token is not None
        before = METER.snapshot()
        # The peer's write pushes the budget over; "hot" is the LRU
        # victim but leased — the sweep must take "cold" instead.
        evicting.record("cold", {"verdict": "unknown"}, bound=1,
                        engine="explicit", snapshot=bytes(3000))
        assert evicting.get("hot").has_snapshot, "evicted under a live lease"
        assert not evicting.get("cold").has_snapshot
        assert METER.delta(before).get("service.store_evictions", 0) >= 1
        resuming.release_lease("hot", token)
        assert resuming.live_leases() == 0
        resuming.close()
        evicting.close()

    def test_fully_leased_store_skips_eviction_and_meters_it(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = AnalysisStore(path, max_snapshot_bytes=4096)
        store.record("first", {"verdict": "unknown"}, bound=1,
                     engine="explicit", snapshot=bytes(3000))
        # Leases may precede the row (a replica leases before it
        # resumes); with BOTH blobs pinned the sweep finds no victim.
        token_first = store.acquire_lease("first")
        token_second = store.acquire_lease("second")
        before = METER.snapshot()
        store.record("second", {"verdict": "unknown"}, bound=1,
                     engine="explicit", snapshot=bytes(3000))
        delta = METER.delta(before)
        assert store.get("first").has_snapshot
        assert store.get("second").has_snapshot
        assert delta.get("store.eviction_lease_skips", 0) >= 1
        assert delta.get("service.store_evictions", 0) == 0
        store.release_lease("first", token_first)
        store.release_lease("second", token_second)
        store.close()

    def test_crashed_replica_lease_is_reaped_after_ttl(self, tmp_path):
        path = tmp_path / "store.sqlite"
        crashed = AnalysisStore(path, max_snapshot_bytes=1024, lease_ttl=0.2)
        crashed.record("orphan", {"verdict": "unknown"}, bound=1,
                       engine="explicit", snapshot=bytes(3000))
        assert crashed.acquire_lease("orphan") is not None
        # The replica "crashes" without releasing: no close, no release.
        survivor = AnalysisStore(path, max_snapshot_bytes=1024)
        time.sleep(0.25)  # past the TTL
        before = METER.snapshot()
        survivor.record("pressure", {"verdict": "safe"}, bound=2,
                        engine="explicit")
        delta = METER.delta(before)
        assert delta.get("store.leases_reaped", 0) >= 1
        assert not survivor.get("orphan").has_snapshot, (
            "expired lease still wedging eviction"
        )
        assert survivor.get("orphan").result is not None
        survivor.close()
        crashed.close()


class TestCorruptStore:
    def test_corrupt_row_json_degrades_to_miss(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = AnalysisStore(path)
        store.record("poisoned", {"verdict": "safe"}, bound=3, engine="explicit")
        raw = sqlite3.connect(path)
        with raw:
            raw.execute(
                "UPDATE analyses SET result = 'not json{' "
                "WHERE fingerprint = 'poisoned'"
            )
        raw.close()
        before = METER.snapshot()
        entry = store.get("poisoned")
        assert entry is not None and entry.result is None  # miss, no crash
        assert METER.delta(before).get("service.store_corrupt_results", 0) == 1
        # Peers recompute and overwrite; the row heals.
        store.record("poisoned", {"verdict": "safe"}, bound=3, engine="explicit")
        assert store.get("poisoned").result == {"verdict": "safe"}
        store.close()

    def test_wholesale_corrupt_file_is_rotated_not_fatal(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database " * 64)
        before = METER.snapshot()
        store = open_store(path)
        assert isinstance(store, AnalysisStore)  # recovered, not degraded
        assert METER.delta(before).get("service.store_corrupt_rotations") == 1
        assert path.with_name(path.name + ".corrupt").exists()
        store.record("fresh", {"verdict": "safe"}, bound=1, engine="explicit")
        assert store.get("fresh").result == {"verdict": "safe"}
        # A peer opening the same (now healthy) path joins normally.
        peer = open_store(path)
        assert isinstance(peer, AnalysisStore)
        assert peer.get("fresh").result == {"verdict": "safe"}
        peer.close()
        store.close()


class TestDegradedMode:
    def test_unusable_location_degrades(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        before = METER.snapshot()
        store = open_store(blocker / "sub" / "store.sqlite")
        assert isinstance(store, DegradedAnalysisStore)
        assert METER.delta(before).get("service.store_degraded") == 1
        # Full store surface, store-less semantics.
        assert store.get("anything") is None
        store.record("anything", {"verdict": "safe"}, bound=1, engine="x")
        assert store.get("anything") is None
        assert store.acquire_lease("anything") is None
        store.release_lease("anything", None)
        assert store.live_leases() == 0
        stats = store.stats()
        assert stats["open"] is False and stats["degraded"] is True
        assert "reason" in stats

    def test_cuba_serve_logs_and_continues_storeless(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--host", "127.0.0.1", "--port", str(port),
                "--store", str(blocker / "sub" / "store.sqlite"),
                "--executor", "thread",
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            from repro.errors import ServiceError
            from repro.service import RetryPolicy, ServiceClient

            client = ServiceClient(
                "127.0.0.1", port,
                retry=RetryPolicy(connect_timeout=2.0, read_timeout=30.0,
                                  retries=0),
            )
            deadline = time.monotonic() + 30
            while True:
                assert proc.poll() is None, proc.stderr.read()
                try:
                    health = client.health()
                    break
                except ServiceError:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            assert health["store_degraded"] is True
            assert health["store"]["open"] is False
            # Verdicts still flow — uncached, but correct.
            from repro.cpds import format_cpds
            from repro.models import fig1_cpds

            response = client.submit(
                format_cpds(fig1_cpds()), property_spec="shared:3",
                engine="explicit", max_rounds=6,
            )
            assert response["verdict"] == "unsafe"
            assert response["cached"] is False
            client.shutdown()
            proc.wait(timeout=30)
            assert "degraded store-less mode" in proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
