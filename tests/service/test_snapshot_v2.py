"""SNAPSHOT_VERSION 2 behaviour: old blobs degrade to misses, the wuba
kind round-trips, and the executor resolves snapshots lane-agnostically
through the registry.
"""

import pickle
import struct

import pytest

from repro.core.property import AlwaysSafe
from repro.core.result import Verdict
from repro.errors import SnapshotError
from repro.models import fig1_cpds, fig2_cpds
from repro.models.registry import smallest_per_row
from repro.reach.wuba import WubaReach
from repro.service.executor import EngineJob, _restore, execute_job
from repro.service.snapshot import (
    KIND_EXPLICIT,
    KIND_WUBA,
    MAGIC,
    SNAPSHOT_VERSION,
    restore_wuba,
    snapshot_kind,
    snapshot_wuba,
)
from repro.util.meter import scoped


def _v1_blob(kind: int = KIND_EXPLICIT) -> bytes:
    return struct.pack("<4sHB", MAGIC, 1, kind) + pickle.dumps({})


class TestVersioning:
    def test_version_is_two(self):
        assert SNAPSHOT_VERSION == 2

    def test_v1_blob_is_rejected_with_version_message(self):
        with pytest.raises(SnapshotError, match="snapshot version 1 != supported 2"):
            snapshot_kind(_v1_blob())

    def test_v1_blob_degrades_to_store_miss_in_executor(self):
        job = EngineJob(
            cpds=fig1_cpds(),
            prop=AlwaysSafe(),
            problem="p",
            snapshot=_v1_blob(),
        )
        with scoped() as delta:
            assert _restore(job) is None
        assert delta["service.snapshot_rejects"] == 1

    def test_unknown_kind_byte_degrades_to_miss(self):
        blob = struct.pack("<4sHB", MAGIC, SNAPSHOT_VERSION, 99) + pickle.dumps({})
        job = EngineJob(cpds=fig1_cpds(), prop=AlwaysSafe(), problem="p", snapshot=blob)
        with scoped() as delta:
            assert _restore(job) is None
        assert delta["service.snapshot_rejects"] == 1


class TestWubaRoundTrip:
    def test_fig1_roundtrip_then_advance_matches_fresh(self):
        cpds = fig1_cpds()
        fresh = WubaReach(cpds)
        fresh.ensure_level(5)
        engine = WubaReach(cpds)
        engine.ensure_level(3)
        blob = engine.snapshot()
        assert snapshot_kind(blob) == KIND_WUBA
        restored = restore_wuba(cpds, blob)
        assert restored.k == 3
        restored.ensure_level(5)
        assert restored.levels == fresh.levels

    @pytest.mark.parametrize(
        "bench",
        [pytest.param(b, id=b.name) for b in smallest_per_row()],
    )
    def test_registry_rows_roundtrip(self, bench):
        cpds, prop = bench.build()
        if not WubaReach.applicable(cpds, prop):
            pytest.skip("WCR fails")
        engine = WubaReach(cpds)
        engine.ensure_level(4)
        restored = restore_wuba(cpds, engine.snapshot())
        assert restored.levels == engine.levels
        assert restored.visible_levels == engine.visible_levels

    def test_restore_against_a_different_cpds_is_rejected(self):
        engine = WubaReach(fig1_cpds())
        engine.ensure_level(2)
        blob = engine.snapshot()
        other = smallest_per_row()[0].build()[0]
        with pytest.raises(SnapshotError):
            restore_wuba(other, blob)

    def test_truncated_wuba_blob_is_malformed_not_a_crash(self):
        engine = WubaReach(fig1_cpds())
        engine.ensure_level(2)
        blob = snapshot_wuba(engine)
        with pytest.raises(SnapshotError):
            restore_wuba(fig1_cpds(), blob[:-10])


class TestExecutorLaneDispatch:
    def test_wuba_job_end_to_end(self):
        cpds = fig1_cpds()
        outcome = execute_job(
            EngineJob(
                cpds=cpds,
                prop=AlwaysSafe(),
                problem="wuba-e2e",
                engine="wuba",
                max_rounds=4,
            )
        )
        assert outcome.kind == "wuba"
        assert outcome.response["verdict"] == Verdict.UNKNOWN.value
        assert outcome.snapshot is not None
        assert snapshot_kind(outcome.snapshot) == KIND_WUBA

    def test_wuba_job_resumes_from_its_own_snapshot(self):
        cpds = fig1_cpds()
        first = execute_job(
            EngineJob(
                cpds=cpds, prop=AlwaysSafe(), problem="p", engine="wuba", max_rounds=3
            )
        )
        with scoped() as delta:
            second = execute_job(
                EngineJob(
                    cpds=cpds,
                    prop=AlwaysSafe(),
                    problem="p",
                    engine="wuba",
                    max_rounds=6,
                    snapshot=first.snapshot,
                )
            )
        assert delta["service.resumes"] == 1
        assert second.response["k"] >= first.response["k"]

    def test_lane_alias_accepted_by_job(self):
        outcome = execute_job(
            EngineJob(
                cpds=fig1_cpds(),
                prop=AlwaysSafe(),
                problem="p",
                engine="wk",
                max_rounds=2,
            )
        )
        assert outcome.kind == "wuba"

    def test_cross_lane_snapshot_is_dropped_not_misused(self):
        # An explicit-lane blob offered to a wuba job: the registry
        # restores it faithfully, then the lane guard rejects it.
        cpds = fig1_cpds()
        explicit = execute_job(
            EngineJob(
                cpds=cpds,
                prop=AlwaysSafe(),
                problem="p",
                engine="explicit",
                max_rounds=3,
            )
        )
        with scoped() as delta:
            outcome = execute_job(
                EngineJob(
                    cpds=cpds,
                    prop=AlwaysSafe(),
                    problem="p",
                    engine="wuba",
                    max_rounds=3,
                    snapshot=explicit.snapshot,
                )
            )
        assert outcome.kind == "wuba"
        assert delta["service.snapshot_rejects"] == 1

    def test_engine_config_falls_back_to_jobs_field(self):
        from repro.reach.config import EngineConfig

        job = EngineJob(cpds=fig1_cpds(), prop=AlwaysSafe(), problem="p", jobs=3)
        assert job.engine_config() == EngineConfig(jobs=3)
        explicit_config = EngineConfig(jobs=7, batched=False)
        job = EngineJob(
            cpds=fig1_cpds(),
            prop=AlwaysSafe(),
            problem="p",
            jobs=3,
            config=explicit_config,
        )
        assert job.engine_config() is explicit_config

    def test_wuba_job_on_inapplicable_model_is_unknown_final(self):
        """A failed precondition (fig. 2 violates WCR) is UNKNOWN for a
        reason deeper k cannot fix: final, no engine construction (which
        would diverge computing the infinite write-free closure), no
        snapshot."""
        with scoped() as delta:
            outcome = execute_job(
                EngineJob(
                    cpds=fig2_cpds(),
                    prop=AlwaysSafe(),
                    problem="p",
                    engine="wuba",
                    max_rounds=2,
                )
            )
        assert outcome.response["verdict"] == Verdict.UNKNOWN.value
        assert outcome.response["final"] is True
        assert "not applicable" in outcome.response["message"]
        assert outcome.snapshot is None
        assert delta["service.lane_rejects"] == 1
        assert "wuba.expansions" not in delta
