"""Concurrent soak of the process-pool executor through ``cuba serve``
(PR 6).

The quick registry rows are pushed through a live HTTP server whose
service dispatches engine runs to worker processes, every row submitted
twice concurrently.  Two properties must hold:

* in-flight dedup stays parent-side: exactly one
  ``service.engine_runs`` per unique fingerprint, regardless of how the
  duplicate submissions interleave;
* ``/meter`` is executor-invariant: the worker METER deltas merged back
  by the executor make the server's engine-counter totals equal a
  serial, in-thread oracle run of the same requests.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cpds import format_cpds
from repro.models import fig1_cpds
from repro.models.bluetooth import bluetooth_source
from repro.models.bst import bst_source
from repro.models.dekker import dekker_source
from repro.models.filecrawler import filecrawler_source
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    AnalysisStore,
    ServiceClient,
    ServiceServer,
)
from repro.util.meter import scoped

MAX_ROUNDS = 3

#: The quick registry slice in *submittable* source form — the soak
#: drives the wire formats (cpds text and boolean programs), not built
#: objects, mirroring what real clients send.
ROWS = [
    ("fig1", {"cpds_text": format_cpds(fig1_cpds()), "property_spec": "shared:3"}),
    ("9/Dekker", {"bp_text": dekker_source()}),
    ("1/Bluetooth-1", {"bp_text": bluetooth_source(1, 1, 1)}),
    ("5/BST", {"bp_text": bst_source(1, 1)}),
    ("7/File-crawler", {"bp_text": filecrawler_source(1)}),
]


@pytest.fixture
def process_server(tmp_path):
    service = AnalysisService(
        AnalysisStore(tmp_path / "soak.sqlite"),
        workers=2,
        executor="process",
    )
    server = ServiceServer(service, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    yield server
    server.request_shutdown()
    thread.join(20)
    assert not thread.is_alive(), "server failed to shut down"


def test_registry_rows_survive_the_wire_format():
    assert len(ROWS) >= 3, "soak needs a non-trivial registry slice"


def test_soak_dedup_and_meter_against_serial_oracle(process_server, tmp_path):
    client = ServiceClient(port=process_server.port, timeout=120)
    before = client.meter()
    with ThreadPoolExecutor(max_workers=4) as submitters:
        futures = [
            submitters.submit(
                client.submit,
                engine="explicit",
                max_rounds=MAX_ROUNDS,
                **kwargs,
            )
            for _row, kwargs in ROWS
            for _ in range(2)
        ]
        responses = [future.result() for future in futures]
    after = client.meter()
    delta = {
        name: value - before.get(name, 0) for name, value in after.items()
    }

    # One engine run per unique fingerprint; the duplicate either joined
    # the in-flight run or hit the store entry the run had just filled.
    assert delta.get("service.engine_runs") == len(ROWS)
    assert (
        delta.get("service.dedup_joins", 0) + delta.get("service.store_hits", 0)
        == len(ROWS)
    )
    # Both submissions of a row agree on the verdict.
    for index in range(0, len(responses), 2):
        first, second = responses[index], responses[index + 1]
        assert first["fingerprint"] == second["fingerprint"]
        assert (first["verdict"], first["bound"]) == (
            second["verdict"],
            second["bound"],
        )

    # Serial oracle: the same requests, once each, on an in-thread
    # service.  Engine counters must match exactly — the process
    # executor merged every worker's METER delta home.
    oracle = AnalysisService(AnalysisStore(tmp_path / "oracle.sqlite"))
    try:
        with scoped() as oracle_work:
            oracle_responses = {
                row: oracle.run(
                    AnalysisRequest(
                        engine="explicit",
                        max_rounds=MAX_ROUNDS,
                        **kwargs,
                    )
                )
                for row, kwargs in ROWS
            }
    finally:
        oracle.close()
    for (row, _kwargs), response in zip(ROWS, responses[::2]):
        assert response["verdict"] == oracle_responses[row]["verdict"], row
        assert response["bound"] == oracle_responses[row]["bound"], row
    engine_keys = {
        name
        for source in (delta, oracle_work)
        for name in source
        if name.startswith("explicit.")
    }
    # Shard/pool bookkeeping is execution-shape-dependent; the work
    # counters themselves must be invariant.
    engine_keys.discard("explicit.replay_shards")
    for name in sorted(engine_keys):
        assert delta.get(name, 0) == oracle_work.get(name, 0), (
            name,
            delta.get(name, 0),
            oracle_work.get(name, 0),
        )
