"""Snapshot round-trip differentials (resume soundness).

``restore(snapshot(engine))`` followed by ``ensure_level(k+2)`` must be
level-for-level identical to an uninterrupted run — same level sets,
same visible projections, same METER expansion counts (summed over the
checkpointed prefix and the resumed suffix) — on every registry row and
on randomized FCR instances, in both lanes.  The checks mirror the
acceptance criterion of the persistent-service PR: a deeper-``k``
request served from a stored snapshot is indistinguishable from a
fresh, deeper run.
"""

import pytest

from repro.core.property import AlwaysSafe
from repro.errors import ContextExplosionError, SnapshotError
from repro.models.random_gen import RandomSpec, random_cpds
from repro.models.registry import smallest_per_row
from repro.cuba.scheme1 import scheme1_rk
from repro.cuba.verifier import Cuba
from repro.reach.explicit import ExplicitReach
from repro.reach.symbolic import SymbolicReach
from repro.reach.witness import validate_trace
from repro.service.snapshot import MAGIC
from repro.util.meter import scoped

K = 3

REGISTRY = smallest_per_row()
FCR_ROWS = smallest_per_row(lambda b: b.fcr)
SPEC = RandomSpec(n_threads=2, n_shared=2, n_symbols=2, rules_per_thread=5)

_EXPLICIT_METERS = (
    "explicit.expansions",
    "explicit.level_unique_views",
    "explicit.context_cache_hits",
)
_SYMBOLIC_METERS = (
    "symbolic.expansions",
    "symbolic.level_unique_views",
    "symbolic.expansion_cache_hits",
)


def _sum(*deltas):
    merged: dict = {}
    for delta in deltas:
        for name, value in delta.items():
            merged[name] = merged.get(name, 0) + value
    return merged


def _explicit_roundtrip(cpds, *, max_states=None):
    """Fresh engine to K+2 vs checkpoint-at-K + resume; returns both."""
    kwargs = {} if max_states is None else {"max_states_per_context": max_states}
    with scoped() as fresh_work:
        fresh = ExplicitReach(cpds, **kwargs)
        fresh.ensure_level(K + 2)
    with scoped() as prefix_work:
        engine = ExplicitReach(cpds, **kwargs)
        engine.ensure_level(K)
    blob = engine.snapshot()
    restored = ExplicitReach.restore(cpds, blob)
    assert restored.k == K
    with scoped() as suffix_work:
        restored.ensure_level(K + 2)

    for k in range(K + 3):
        assert fresh.states_new_at(k) == restored.states_new_at(k), f"k={k}"
        assert fresh.visible_new_at(k) == restored.visible_new_at(k), f"k={k}"
    assert fresh.first_seen == restored.first_seen
    assert fresh.level_sizes() == restored.level_sizes()

    resumed_work = _sum(prefix_work, suffix_work)
    for name in _EXPLICIT_METERS:
        assert fresh_work.get(name, 0) == resumed_work.get(name, 0), name
    return fresh, restored


def _symbolic_roundtrip(cpds):
    with scoped() as fresh_work:
        fresh = SymbolicReach(cpds)
        fresh.ensure_level(K + 2)
    with scoped() as prefix_work:
        engine = SymbolicReach(cpds)
        engine.ensure_level(K)
    blob = engine.snapshot()
    restored = SymbolicReach.restore(cpds, blob)
    assert restored.k == K
    with scoped() as suffix_work:
        restored.ensure_level(K + 2)

    for k in range(K + 3):
        assert fresh.levels[k] == restored.levels[k], f"k={k}"
        assert fresh.visible_new_at(k) == restored.visible_new_at(k), f"k={k}"

    resumed_work = _sum(prefix_work, suffix_work)
    for name in _SYMBOLIC_METERS:
        assert fresh_work.get(name, 0) == resumed_work.get(name, 0), name
    return fresh, restored


@pytest.mark.parametrize("bench", FCR_ROWS, ids=lambda b: b.row)
def test_explicit_roundtrip_on_registry_rows(bench):
    cpds, _prop = bench.build()
    _fresh, restored = _explicit_roundtrip(cpds)
    # Witness machinery survives the round trip: parents restored.
    sample = sorted(restored.states_up_to(2), key=str)[:5]
    for state in sample:
        validate_trace(cpds, restored.trace(state))


@pytest.mark.parametrize("bench", REGISTRY, ids=lambda b: b.row)
def test_symbolic_roundtrip_on_registry_rows(bench):
    cpds, _prop = bench.build()
    _symbolic_roundtrip(cpds)


@pytest.mark.parametrize("seed", range(20))
def test_random_roundtrip_both_lanes(seed):
    """20 random seeds, both lanes; non-FCR instances are skipped for
    the explicit lane exactly like the batched differential suite."""
    cpds = random_cpds(seed, SPEC)
    symbolic_fresh, _ = _symbolic_roundtrip(cpds)
    assert symbolic_fresh.k == K + 2
    try:
        _explicit_roundtrip(cpds, max_states=300)
    except ContextExplosionError:
        pytest.skip("non-FCR seed (explicit lane diverges by design)")


def test_symbolic_snapshot_survives_foreign_intern_order(tmp_path):
    """A restarted daemon's symbol-intern history need not match the
    snapshotting process's: canonical forms are order-dependent, so
    restore re-canonicalizes stored signatures under the current
    process's alphabets.  Produce the snapshot in a subprocess whose
    global symbol order is deliberately perturbed, restore here, and
    resume — levels must match an uninterrupted local run."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    blob_path = tmp_path / "foreign.snap"
    script = f"""
import sys
from repro.automata.intern import order_of
# Hostile interning history: this process sees the fig1 alphabets (and
# noise) in reverse order before the engine ever touches them.
for symbol in (9999, "zz", 6, 5, 4, 2, 1):
    order_of(symbol)
from repro.models import fig1_cpds
from repro.reach.symbolic import SymbolicReach
engine = SymbolicReach(fig1_cpds())
engine.ensure_level({K})
open({str(blob_path)!r}, "wb").write(engine.snapshot())
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    subprocess.run(
        [sys.executable, "-c", script], env=env, check=True, timeout=120
    )

    from repro.models import fig1_cpds

    cpds = fig1_cpds()
    restored = SymbolicReach.restore(cpds, blob_path.read_bytes())
    assert restored.k == K
    restored.ensure_level(K + 2)
    fresh = SymbolicReach(cpds)
    fresh.ensure_level(K + 2)
    for k in range(K + 3):
        assert fresh.levels[k] == restored.levels[k], f"k={k}"
        assert fresh.visible_new_at(k) == restored.visible_new_at(k), f"k={k}"


class TestResumedVerdicts:
    def test_scheme1_resumed_verdict_matches_fresh(self):
        bench = next(b for b in FCR_ROWS if b.row.startswith("9/"))
        cpds, prop = bench.build()
        fresh = scheme1_rk(cpds, prop, max_rounds=10)

        engine = ExplicitReach(cpds)
        engine.ensure_level(2)
        restored = ExplicitReach.restore(cpds, engine.snapshot())
        resumed = scheme1_rk(cpds, prop, max_rounds=10, engine=restored)
        assert (resumed.verdict, resumed.bound, resumed.method) == (
            fresh.verdict,
            fresh.bound,
            fresh.method,
        )

    def test_cuba_resumed_report_matches_fresh(self):
        bench = next(b for b in FCR_ROWS if b.row.startswith("9/"))
        cpds, prop = bench.build()
        fresh = Cuba(cpds, prop).verify(max_rounds=12)

        engine = ExplicitReach(cpds)
        engine.ensure_level(2)
        restored = ExplicitReach.restore(cpds, engine.snapshot())
        resumed = Cuba(cpds, prop).verify(max_rounds=12, engine=restored)
        assert resumed.verdict is fresh.verdict
        assert (resumed.rk_bound, resumed.trk_bound, resumed.winner) == (
            fresh.rk_bound,
            fresh.trk_bound,
            fresh.winner,
        )

    def test_deeper_snapshot_does_not_leak_past_a_shallow_budget(self):
        """max_rounds is a TOTAL budget even when the restored engine
        already holds deeper levels: verdicts beyond the budget must
        not leak out of the replay."""
        from repro.core.property import SharedStateReachability
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        prop = SharedStateReachability({3})  # first violated at k=2
        engine = ExplicitReach(cpds)
        engine.ensure_level(4)
        restored = ExplicitReach.restore(cpds, engine.snapshot())
        shallow = scheme1_rk(cpds, prop, max_rounds=1, engine=restored)
        fresh = scheme1_rk(cpds, prop, max_rounds=1)
        assert (shallow.verdict, shallow.bound) == (fresh.verdict, fresh.bound)
        assert shallow.verdict.value == "unknown" and shallow.bound == 1

    def test_resumed_refutation_carries_a_valid_trace(self):
        """A violation first reachable beyond the checkpoint level must
        be found by the resumed run with a replayable witness."""
        from repro.core.property import SharedStateReachability
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        prop = SharedStateReachability({3})
        engine = ExplicitReach(cpds)
        engine.ensure_level(1)  # ⟨3|...⟩ first appears at k=2
        restored = ExplicitReach.restore(cpds, engine.snapshot())
        result = scheme1_rk(cpds, prop, max_rounds=10, engine=restored)
        assert result.is_unsafe and result.bound == 2
        validate_trace(cpds, result.trace)


class TestRejection:
    def test_per_state_engine_refuses_to_snapshot(self):
        from repro.models import fig1_cpds

        engine = ExplicitReach(fig1_cpds(), batched=False)
        with pytest.raises(SnapshotError):
            engine.snapshot()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda blob: blob[: len(MAGIC) - 1],           # truncated header
            lambda blob: b"NOPE" + blob[4:],               # wrong magic
            lambda blob: blob[:4] + b"\xff\xff" + blob[6:],  # future version
            lambda blob: blob[:-20],                       # truncated payload
            lambda blob: blob[:12] + b"garbage",           # mangled pickle
        ],
        ids=["header", "magic", "version", "payload", "pickle"],
    )
    def test_corrupt_blobs_raise_snapshot_error(self, mutate):
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        engine = ExplicitReach(cpds)
        engine.ensure_level(2)
        blob = mutate(engine.snapshot())
        with pytest.raises(SnapshotError):
            ExplicitReach.restore(cpds, blob)

    def test_restore_against_a_different_cpds_is_rejected(self):
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        engine = ExplicitReach(cpds)
        engine.ensure_level(2)
        blob = engine.snapshot()
        other = random_cpds(0, SPEC)
        with pytest.raises(SnapshotError):
            ExplicitReach.restore(other, blob)

    def test_symbolic_restore_against_a_different_cpds_is_rejected(self):
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        engine = SymbolicReach(cpds)
        engine.ensure_level(2)
        blob = engine.snapshot()
        other = random_cpds(0, SPEC)
        with pytest.raises(SnapshotError):
            SymbolicReach.restore(other, blob)

    def test_kind_mismatch_is_rejected(self):
        from repro.models import fig1_cpds

        cpds = fig1_cpds()
        explicit_blob = ExplicitReach(cpds).snapshot()
        with pytest.raises(SnapshotError):
            SymbolicReach.restore(cpds, explicit_blob)


def test_snapshot_of_unknown_budget_run_resumes_to_safe():
    """The service's anytime-knob story end to end at engine level:
    checkpoint an inconclusive bounded run, resume past the collapse
    bound, get SAFE — identical to the uninterrupted verdict."""
    bench = next(b for b in FCR_ROWS if b.row.startswith("9/"))
    cpds, _prop = bench.build()
    short = scheme1_rk(cpds, AlwaysSafe(), max_rounds=2)
    assert short.verdict.value == "unknown"

    engine = ExplicitReach(cpds)
    engine.ensure_level(2)
    restored = ExplicitReach.restore(cpds, engine.snapshot())
    deep = scheme1_rk(cpds, AlwaysSafe(), max_rounds=20, engine=restored)
    fresh = scheme1_rk(cpds, AlwaysSafe(), max_rounds=20)
    assert deep.is_safe and (deep.verdict, deep.bound) == (
        fresh.verdict,
        fresh.bound,
    )
