"""AnalysisStore: persistence, schema/version handling, corruption
tolerance (bad blob ⇒ miss, never a crash), and LRU size bounding."""

import json
import sqlite3

import pytest

from repro.service.snapshot import SNAPSHOT_VERSION
from repro.service.store import STORE_SCHEMA_VERSION, AnalysisStore

RESULT = {"verdict": "safe", "bound": 4, "final": True, "cached": False}


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "cuba-store.sqlite"


class TestRoundTrip:
    def test_record_and_get(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp1", RESULT, bound=4, engine="explicit", snapshot=b"blob")
        entry = store.get("fp1")
        assert entry.result == RESULT
        assert entry.bound == 4
        assert entry.engine == "explicit"
        assert entry.snapshot is not None
        store.close()

    def test_snapshot_blob_round_trips_exactly(self, store_path):
        store = AnalysisStore(store_path)
        blob = bytes(range(256)) * 3
        store.record("fp", RESULT, bound=1, engine="explicit", snapshot=blob)
        assert store.get("fp").snapshot == blob
        store.close()

    def test_survives_reopen(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp1", RESULT, bound=4, engine="explicit", snapshot=b"blob")
        store.close()
        reopened = AnalysisStore(store_path)
        entry = reopened.get("fp1")
        assert entry is not None and entry.result == RESULT
        reopened.close()

    def test_upsert_replaces(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp", {"verdict": "unknown"}, bound=2, engine="explicit",
                     snapshot=b"early")
        store.record("fp", RESULT, bound=4, engine="explicit", snapshot=None)
        entry = store.get("fp")
        assert entry.result == RESULT
        assert entry.snapshot is None  # conclusive runs drop the snapshot
        store.close()

    def test_miss_returns_none(self, store_path):
        store = AnalysisStore(store_path)
        assert store.get("nope") is None
        store.close()

    def test_closed_store_degrades_to_misses(self, store_path):
        store = AnalysisStore(store_path)
        store.close()
        assert store.get("fp") is None
        store.record("fp", RESULT, bound=1, engine="explicit")  # no crash
        assert store.stats() == {"open": False}


class TestVersioning:
    def test_schema_mismatch_wipes(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp", RESULT, bound=4, engine="explicit")
        store.close()
        raw = sqlite3.connect(store_path)
        with raw:
            raw.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        raw.close()
        reopened = AnalysisStore(store_path)
        assert reopened.get("fp") is None  # wiped, not crashed
        reopened.close()

    def test_stale_snapshot_version_reads_as_missing(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp", RESULT, bound=4, engine="explicit", snapshot=b"blob")
        raw = sqlite3.connect(store_path)
        with raw:
            raw.execute(
                "UPDATE analyses SET snapshot_version = ?",
                (SNAPSHOT_VERSION + 1,),
            )
        raw.close()
        entry = store.get("fp")
        assert entry.result == RESULT  # verdict survives
        assert entry.snapshot is None  # old-format blob is a miss
        store.close()


class TestCorruption:
    def test_wholesale_corrupt_file_is_rotated_and_recreated(self, store_path):
        store_path.write_bytes(b"this is not a sqlite database at all")
        store = AnalysisStore(store_path)
        assert store.get("anything") is None
        store.record("fp", RESULT, bound=4, engine="explicit")
        assert store.get("fp").result == RESULT
        assert store_path.with_name(store_path.name + ".corrupt").exists()
        store.close()

    def test_corrupt_rotation_takes_the_wal_sidecars_along(self, store_path):
        """An orphaned -wal next to the freshly recreated database
        would be replayed into it (SQLite's separated-WAL hazard), so
        rotation must move the sidecars together with the main file."""
        store_path.write_bytes(b"definitely not sqlite")
        store_path.with_name(store_path.name + "-wal").write_bytes(b"stale wal")
        store_path.with_name(store_path.name + "-shm").write_bytes(b"stale shm")
        store = AnalysisStore(store_path)
        store.record("fp", RESULT, bound=4, engine="explicit")
        assert store.get("fp").result == RESULT
        assert store_path.with_name(store_path.name + ".corrupt").exists()
        # The stale sidecar moved aside with the main file — whatever
        # -wal exists now belongs to the fresh database, not the crash.
        live_wal = store_path.with_name(store_path.name + "-wal")
        assert not live_wal.exists() or live_wal.read_bytes() != b"stale wal"
        store.close()
        reopened = AnalysisStore(store_path)
        assert reopened.get("fp").result == RESULT
        reopened.close()

    def test_corrupt_result_json_reads_as_missing_result(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp", RESULT, bound=4, engine="explicit", snapshot=b"blob")
        raw = sqlite3.connect(store_path)
        with raw:
            raw.execute("UPDATE analyses SET result = '{not json'")
        raw.close()
        entry = store.get("fp")
        assert entry is not None and entry.result is None
        assert entry.snapshot == b"blob"  # rest of the row still usable
        store.close()


class TestEviction:
    def test_lru_eviction_respects_budget_and_keeps_verdicts(self, store_path):
        evictions = []
        store = AnalysisStore(
            store_path, max_snapshot_bytes=250, on_evict=lambda: evictions.append(1)
        )
        for index in range(4):
            store.record(
                f"fp{index}",
                dict(RESULT, bound=index),
                bound=index,
                engine="explicit",
                snapshot=bytes(100),
            )
            store.get(f"fp{index}")  # refresh LRU clocks in insert order
        # 4 * 100 bytes against a 250-byte budget: the two oldest lose
        # their snapshots, every verdict row survives.
        with_snapshots = [
            index for index in range(4) if store.get(f"fp{index}").snapshot
        ]
        assert with_snapshots == [2, 3]
        assert all(store.get(f"fp{index}").result for index in range(4))
        assert evictions  # hook fired (routes to clear_runtime_caches)
        store.close()

    def test_get_refreshes_lru_rank(self, store_path):
        store = AnalysisStore(store_path, max_snapshot_bytes=350)
        for index in range(2):
            store.record(
                f"fp{index}", RESULT, bound=1, engine="explicit",
                snapshot=bytes(100),
            )
        store.get("fp0")  # fp0 becomes more recently used than fp1
        for index in (2, 3):
            store.record(
                f"fp{index}", RESULT, bound=1, engine="explicit",
                snapshot=bytes(100),
            )
        # 4 snapshots x 100 bytes against 350: exactly one eviction, and
        # the refreshed fp0 outranks the untouched fp1.
        assert store.get("fp0").snapshot is not None
        assert store.get("fp1").snapshot is None
        store.close()

    def test_stats_reports_totals(self, store_path):
        store = AnalysisStore(store_path)
        store.record("fp", RESULT, bound=4, engine="explicit", snapshot=bytes(10))
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["snapshots"] == 1
        assert stats["snapshot_bytes"] == 10
        store.close()


def test_result_json_is_sorted_and_stable(store_path):
    """The stored record is canonical JSON — diffable and stable across
    dict orderings."""
    store = AnalysisStore(store_path)
    store.record("fp", {"b": 1, "a": 2}, bound=0, engine="explicit")
    raw = sqlite3.connect(store_path)
    text = raw.execute("SELECT result FROM analyses").fetchone()[0]
    raw.close()
    assert text == json.dumps({"a": 2, "b": 1}, sort_keys=True)
    store.close()
