"""AnalysisService core: store hits, in-flight dedup, deeper-k resume.

These run the sync core without HTTP — the transport-independent
behavior the server, the CLI, and the quickstart demo all share.
"""

import threading

import pytest

from repro.cpds import format_cpds
from repro.errors import ServiceError
from repro.models import fig1_cpds
from repro.models.dekker import dekker_source
from repro.service import AnalysisRequest, AnalysisService, AnalysisStore
from repro.service.server import parse_property_spec
from repro.util.meter import scoped

FIG1 = format_cpds(fig1_cpds())
DEKKER = dekker_source()


@pytest.fixture
def service(tmp_path):
    service = AnalysisService(
        AnalysisStore(tmp_path / "cuba-store.sqlite"), workers=2
    )
    yield service
    service.close()


class TestStoreHits:
    def test_second_identical_submission_is_a_store_hit(self, service):
        request = AnalysisRequest(
            cpds_text=FIG1, property_spec="shared:3", max_rounds=10
        )
        with scoped() as first_work:
            first = service.run(request)
        with scoped() as second_work:
            second = service.run(request)
        assert first_work.get("service.engine_runs") == 1
        assert second_work.get("service.engine_runs", 0) == 0
        assert second["cached"] and not first["cached"]
        assert (first["verdict"], first["bound"]) == (
            second["verdict"],
            second["bound"],
        ) == ("unsafe", 2)

    def test_bp_and_equivalent_budget_share_one_entry(self, service):
        """max_rounds is the anytime knob, not part of the identity: a
        shallower request is answered by a deeper stored verdict."""
        deep = AnalysisRequest(bp_text=DEKKER, engine="auto", max_rounds=25)
        with scoped() as first_work:
            first = service.run(deep)
        shallow = AnalysisRequest(bp_text=DEKKER, engine="auto", max_rounds=10)
        with scoped() as second_work:
            second = service.run(shallow)
        assert first["verdict"] == "safe"
        assert second["cached"]
        assert first_work.get("service.engine_runs") == 1
        assert second_work.get("service.engine_runs", 0) == 0

    def test_different_property_is_a_different_problem(self, service):
        with scoped() as work:
            service.run(AnalysisRequest(cpds_text=FIG1, property_spec="shared:3"))
            service.run(AnalysisRequest(cpds_text=FIG1, property_spec="shared:2"))
        assert work.get("service.engine_runs") == 2


class TestDedup:
    def test_concurrent_identical_submissions_run_one_engine(self, service):
        """The acceptance criterion: two concurrent identical
        fingerprints join one running analysis — METER proves a single
        engine run — and both callers get the verdict."""
        request = AnalysisRequest(bp_text=DEKKER, engine="auto", max_rounds=25)
        results = []
        with scoped() as work:
            threads = [
                threading.Thread(target=lambda: results.append(service.run(request)))
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert work.get("service.engine_runs") == 1
        assert work.get("service.dedup_joins") == 1
        assert len(results) == 2
        assert results[0]["verdict"] == results[1]["verdict"] == "safe"
        assert results[0]["bound"] == results[1]["bound"]


class TestResume:
    def test_deeper_budget_resumes_the_stored_snapshot(self, service):
        shallow = AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=2)
        with scoped() as shallow_work:
            first = service.run(shallow)
        assert first["verdict"] == "unknown" and not first["final"]

        deep = AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=25)
        with scoped() as deep_work:
            second = service.run(deep)
        assert second["verdict"] == "safe" and second["resumed"]
        assert deep_work.get("service.resumes") == 1

        # Resume soundness at the service level: summed engine work over
        # (shallow run + resumed run) equals one fresh deep run.
        fresh_service = AnalysisService(
            AnalysisStore(service.store.path.with_name("fresh.sqlite"))
        )
        try:
            with scoped() as fresh_work:
                fresh = fresh_service.run(deep)
        finally:
            fresh_service.close()
        assert (fresh["verdict"], fresh["bound"]) == (
            second["verdict"],
            second["bound"],
        )
        resumed_total = shallow_work.get("explicit.expansions", 0) + deep_work.get(
            "explicit.expansions", 0
        )
        assert resumed_total == fresh_work.get("explicit.expansions", 0)

    def test_symbolic_lane_resumes_too(self, service):
        shallow = AnalysisRequest(bp_text=DEKKER, engine="symbolic", max_rounds=2)
        first = service.run(shallow)
        assert first["verdict"] == "unknown" and not first["final"]
        deep = AnalysisRequest(bp_text=DEKKER, engine="symbolic", max_rounds=25)
        with scoped() as work:
            second = service.run(deep)
        assert second["resumed"] and work.get("service.resumes") == 1
        assert second["verdict"] == "safe"

    def test_diverged_run_is_final_and_never_resumed(self, service):
        """An explicit-engine divergence (non-FCR program) is UNKNOWN
        for a reason deeper k cannot fix: the outcome is final, cached,
        and a bigger budget must not trigger an engine run."""
        pump = "init: 0\nthread T\n  stack: a\n  rule (0, a) -> (0, a a)\n"
        first = service.run(
            AnalysisRequest(
                cpds_text=pump, engine="explicit", max_rounds=5,
                max_states_per_context=200,
            )
        )
        assert first["verdict"] == "unknown" and first["final"]
        with scoped() as work:
            second = service.run(
                AnalysisRequest(
                    cpds_text=pump, engine="explicit", max_rounds=50,
                    max_states_per_context=200,
                )
            )
        assert second["cached"]
        assert work.get("service.engine_runs", 0) == 0

    def test_corrupt_stored_snapshot_degrades_to_fresh_run(self, service):
        shallow = AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=2)
        first = service.run(shallow)
        problem = first["fingerprint"]
        entry = service.store.get(problem)
        service.store.record(
            problem,
            entry.result,
            bound=entry.bound,
            engine=entry.engine,
            snapshot=b"garbage, not a snapshot",
        )
        deep = AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=25)
        with scoped() as work:
            second = service.run(deep)
        assert second["verdict"] == "safe"
        assert not second["resumed"]
        assert work.get("service.snapshot_rejects") == 1
        assert work.get("service.engine_runs") == 1


class TestValidation:
    def test_request_needs_exactly_one_program_form(self):
        with pytest.raises(ServiceError):
            AnalysisRequest()
        with pytest.raises(ServiceError):
            AnalysisRequest(cpds_text=FIG1, bp_text=DEKKER)

    def test_unknown_engine_lane_is_rejected(self):
        with pytest.raises(ServiceError):
            AnalysisRequest(cpds_text=FIG1, engine="quantum")

    def test_property_spec_parsing(self):
        from repro.core.property import AlwaysSafe, SharedStateReachability

        assert isinstance(parse_property_spec(None), AlwaysSafe)
        prop = parse_property_spec("shared:ERR,3")
        assert isinstance(prop, SharedStateReachability)
        assert prop.bad_shared == frozenset({"ERR", 3})
        with pytest.raises(ServiceError):
            parse_property_spec("nonsense")

    def test_payload_validation(self):
        with pytest.raises(ServiceError):
            AnalysisRequest.from_payload({"cpds": "   "})
        with pytest.raises(ServiceError):
            AnalysisRequest.from_payload({"cpds": FIG1, "max_rounds": "many"})
        with pytest.raises(ServiceError):
            AnalysisRequest.from_payload([])

    def test_closed_service_refuses(self, tmp_path):
        service = AnalysisService(AnalysisStore(tmp_path / "s.sqlite"))
        service.close()
        with pytest.raises(ServiceError):
            service.run(AnalysisRequest(cpds_text=FIG1))


def test_jobs_service_reuses_leased_pools_and_releases_on_close(tmp_path):
    """With ``jobs>1``, repeated submissions of one program (including a
    snapshot resume) lease the SAME warm worker pool — the point of
    interning parsed CPDS objects by digest — and ``close()`` releases
    every pool through the shared cache cleanup (no leaked workers)."""
    from repro.reach import parallel

    service = AnalysisService(
        AnalysisStore(tmp_path / "pools.sqlite"), workers=2, jobs=2
    )
    try:
        service.run(AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=2))
        assert len(parallel._POOL_CACHE) == 1
        pool = next(iter(parallel._POOL_CACHE.values()))
        # Deeper budget: resumes the stored snapshot on the interned
        # CPDS object, so the same pool serves the warm engine.
        second = service.run(
            AnalysisRequest(bp_text=DEKKER, engine="explicit", max_rounds=4)
        )
        assert second["resumed"]
        assert len(parallel._POOL_CACHE) == 1
        assert next(iter(parallel._POOL_CACHE.values())) is pool
        assert not pool.broken
    finally:
        service.close()
    assert len(parallel._POOL_CACHE) == 0


def test_cpds_objects_are_interned_across_requests(service):
    """Repeated submissions of one program share a parsed CPDS object —
    the identity the worker-pool cache keys on."""
    request = AnalysisRequest(cpds_text=FIG1, property_spec="shared:3")
    _problem, first_cpds, _prop = service.prepare(request)
    _problem, second_cpds, _prop = service.prepare(request)
    assert first_cpds is second_cpds
