"""Client-side multi-replica discipline (PR 7).

The consistent-hash ring (determinism, coverage, minimal remap on
resize), the submit routing key (anytime budget excluded so deeper
resubmissions land on the snapshot-holding replica), failover to a live
replica past a dead one, the idempotent-only retry rule (``/shutdown``
never retries), and retry-exhaustion surfacing as a clean
:class:`~repro.errors.ServiceError` with the client stats counting it.
"""

import asyncio
import socket
import threading

import pytest

from repro.errors import ServiceError
from repro.service import (
    AnalysisService,
    RetryPolicy,
    ServiceClient,
    ServiceServer,
)
from repro.service.client import _HashRing
from repro.service.store import DegradedAnalysisStore


def _replicas(n):
    return [("10.0.0.%d" % (i + 1), 8000 + i) for i in range(n)]


class TestHashRing:
    def test_deterministic_across_instances(self):
        first = _HashRing(_replicas(4))
        second = _HashRing(_replicas(4))
        for key in ("a", "b", "fingerprint-123", ""):
            assert first.ordered(key) == second.ordered(key)

    def test_orders_every_replica_affinity_first(self):
        ring = _HashRing(_replicas(5))
        order = ring.ordered("some-key")
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_load_spreads_over_all_replicas(self):
        ring = _HashRing(_replicas(4))
        homes = [ring.ordered(f"key-{i}")[0] for i in range(400)]
        for replica in range(4):
            share = homes.count(replica) / len(homes)
            assert 0.05 < share < 0.60, f"replica {replica} owns {share:.0%}"

    def test_adding_a_replica_remaps_only_a_fraction(self):
        keys = [f"key-{i}" for i in range(500)]
        before = _HashRing(_replicas(3))
        after = _HashRing(_replicas(4))
        moved = sum(
            1 for key in keys if before.ordered(key)[0] != after.ordered(key)[0]
        )
        # Expected ~1/4 with consistent hashing; modulo hashing would
        # move ~3/4.  Allow generous noise either way.
        assert moved / len(keys) < 0.55

    def test_single_replica_short_circuits(self):
        assert _HashRing(_replicas(1)).ordered("anything") == [0]


class TestRoutingKey:
    def test_excludes_anytime_budget_and_wait(self):
        base = {"cpds": "prog", "property": "shared:3", "engine": "explicit"}
        shallow = ServiceClient._routing_key({**base, "max_rounds": 1, "wait": True})
        deeper = ServiceClient._routing_key({**base, "max_rounds": 30, "wait": False})
        assert shallow == deeper

    def test_distinguishes_problem_identity(self):
        base = {"cpds": "prog", "property": "shared:3", "engine": "explicit"}
        assert ServiceClient._routing_key(base) != ServiceClient._routing_key(
            {**base, "engine": "symbolic"}
        )
        assert ServiceClient._routing_key(base) != ServiceClient._routing_key(
            {**base, "property": "shared:4"}
        )


def _dead_port() -> int:
    """A port nothing listens on (bound then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def live_server():
    """A store-less in-process server (fast: no sqlite, no engines)."""
    service = AnalysisService(
        DegradedAnalysisStore("unused", "test"), workers=1, executor="thread"
    )
    server = ServiceServer(service, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    yield server
    server.request_shutdown()
    thread.join(20)
    assert not thread.is_alive()


class TestFailover:
    def test_dead_replica_fails_over_to_live_one(self, live_server):
        client = ServiceClient(
            replicas=[f"127.0.0.1:{_dead_port()}",
                      f"127.0.0.1:{live_server.port}"],
            retry=RetryPolicy(connect_timeout=1.0, read_timeout=10.0,
                              retries=3, backoff=0.01),
        )
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats_snapshot()
        assert stats["failures"] == 0
        # The explicit-replica probe of the dead one still fails fast.
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health(replica=0)

    def test_all_replicas_dead_exhausts_cleanly(self):
        client = ServiceClient(
            replicas=[f"127.0.0.1:{_dead_port()}",
                      f"127.0.0.1:{_dead_port()}"],
            retry=RetryPolicy(connect_timeout=0.5, read_timeout=1.0,
                              retries=2, backoff=0.01),
        )
        with pytest.raises(ServiceError, match="after 3 attempt"):
            client.health()
        stats = client.stats_snapshot()
        assert stats["failures"] == 1
        assert stats["retries"] == 2
        assert stats["failovers"] >= 1

    def test_shutdown_is_never_retried(self):
        client = ServiceClient(
            replicas=[f"127.0.0.1:{_dead_port()}"],
            retry=RetryPolicy(connect_timeout=0.5, read_timeout=1.0,
                              retries=5, backoff=0.01),
        )
        with pytest.raises(ServiceError):
            client.shutdown()
        # One attempt per replica, zero retries: the non-idempotent path.
        assert client.stats_snapshot()["retries"] == 0

    def test_broadcast_shutdown_reaches_the_live_replica(self, live_server):
        client = ServiceClient(
            replicas=[f"127.0.0.1:{_dead_port()}",
                      f"127.0.0.1:{live_server.port}"],
            retry=RetryPolicy(connect_timeout=1.0, read_timeout=10.0,
                              retries=0),
        )
        response = client.shutdown()
        assert response["status"] == "shutting down"


class TestBackCompat:
    def test_single_host_port_construction(self):
        client = ServiceClient("127.0.0.1", 9999, timeout=3.5)
        assert client.host == "127.0.0.1"
        assert client.port == 9999
        assert client.retry.read_timeout == 3.5
        assert client.replicas == [("127.0.0.1", 9999)]

    def test_replica_spec_parsing_rejects_garbage(self):
        with pytest.raises(ServiceError, match="cannot parse replica"):
            ServiceClient(replicas=["no-port-here"])
        with pytest.raises(ServiceError, match="port"):
            ServiceClient(replicas=["host:not-a-number"])
