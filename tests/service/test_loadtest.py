"""The ``cuba loadtest`` harness (PR 7).

One real (short) spawn-mode run — two replicas sharing a store — checks
the full ``cuba-loadtest/1`` payload: zero failures, hit-rate and lease
counters populated, the cross-replica probe proving the shared store.
The compare-gate tests are synthetic payloads: configuration matching,
calibration-normalized throughput, the zero-failures rule, and the
newest-comparable-baseline selector.
"""

import json

from repro.service.loadtest import (
    LOADTEST_SCHEMA,
    build_workloads,
    compare_loadtest,
    comparable_loadtest_configs,
    latest_comparable_loadtest,
    run_loadtest,
    write_loadtest_json,
    _percentile,
)


class TestWorkloads:
    def test_quick_profile_contains_the_resume_pair(self):
        names = [item.name for item in build_workloads(quick=True)]
        assert "resume-shallow" in names and "resume-deeper" in names
        assert all(item.weight > 0 for item in build_workloads(quick=True))

    def test_resume_pair_shares_problem_identity(self):
        # Same program/property/engine — only the anytime budget
        # differs, so the deeper submission resumes the shallow
        # snapshot (the lease-guarded path under load).
        items = {item.name: item for item in build_workloads(quick=True)}
        shallow = dict(items["resume-shallow"].kwargs)
        deeper = dict(items["resume-deeper"].kwargs)
        assert shallow.pop("max_rounds") < deeper.pop("max_rounds")
        assert shallow == deeper

    def test_full_profile_is_a_superset(self):
        quick = {item.name for item in build_workloads(quick=True)}
        full = {item.name for item in build_workloads(quick=False)}
        assert quick < full


def test_percentile():
    assert _percentile([], 0.5) is None
    assert _percentile([7.0], 0.99) == 7.0
    values = [float(i) for i in range(1, 101)]
    assert _percentile(values, 0.0) == 1.0
    assert _percentile(values, 1.0) == 100.0
    assert 49.0 <= _percentile(values, 0.5) <= 52.0


def test_two_replica_run_end_to_end(tmp_path):
    payload = run_loadtest(
        spawn=2, duration=2.5, concurrency=3, quick=True, seed=11
    )
    assert payload["schema"] == LOADTEST_SCHEMA
    assert payload["replicas"] == 2
    assert payload["calibration_seconds"] > 0
    totals = payload["totals"]
    assert totals["requests"] > 0
    assert totals["failures"] == 0
    assert totals["throughput_rps"] > 0
    assert totals["p50_ms"] <= totals["p99_ms"]
    for op in ("submit", "status", "result"):
        assert payload["ops"][op]["failures"] == 0
    # The mix converges onto the store/dedup fast path...
    assert 0.0 < totals["dedup_hit_rate"] <= 1.0
    assert totals["store_hit_rate"] > 0.0
    # ...after exercising the resume + lease path at least once.
    assert totals["resumes"] >= 1
    assert totals["lease"]["acquired"] >= 1
    assert totals["lease"]["acquired"] == totals["lease"]["released"]
    # Both replicas answer from ONE store: the probe must hit.
    assert totals["cross_replica_probes"] >= 1
    assert totals["cross_replica_store_hits"] >= 1
    path = write_loadtest_json(payload, tmp_path)
    assert path.name.startswith("LOADTEST_") and path.suffix == ".json"
    assert json.loads(path.read_text())["totals"]["requests"] == totals["requests"]


def _payload(stamp="20260101T000000Z", rps=100.0, calibration=0.1,
             failures=0, **config):
    shape = {
        "quick": True, "duration": 10.0, "concurrency": 8,
        "replicas": 2, "executor": "thread",
    }
    shape.update(config)
    return {
        "schema": LOADTEST_SCHEMA,
        "stamp": stamp,
        "calibration_seconds": calibration,
        "totals": {"throughput_rps": rps, "failures": failures},
        **shape,
    }


class TestCompareGate:
    def test_matching_config_and_throughput_passes(self):
        ok, messages = compare_loadtest(_payload(), _payload(rps=95.0))
        assert ok, messages

    def test_throughput_regression_fails(self):
        ok, messages = compare_loadtest(_payload(rps=50.0), _payload(rps=100.0))
        assert not ok
        assert any("REGRESSION" in m for m in messages)

    def test_calibration_normalizes_slow_machines(self):
        # Half the throughput on a machine whose spin takes twice as
        # long is NOT a regression.
        slow = _payload(rps=50.0, calibration=0.2)
        fast = _payload(rps=100.0, calibration=0.1)
        ok, messages = compare_loadtest(slow, fast)
        assert ok, messages

    def test_failed_requests_fail_the_gate(self):
        ok, messages = compare_loadtest(_payload(failures=3), _payload())
        assert not ok
        assert any("FAILED REQUESTS" in m for m in messages)

    def test_mismatched_config_is_not_comparable(self):
        assert not comparable_loadtest_configs(
            _payload(), _payload(replicas=3)
        )
        ok, messages = compare_loadtest(_payload(), _payload(concurrency=16))
        assert not ok
        assert any("NOT COMPARABLE" in m for m in messages)

    def test_latest_comparable_picks_newest_matching(self, tmp_path):
        old = _payload(stamp="20260101T000000Z")
        newer = _payload(stamp="20260301T000000Z")
        other_shape = _payload(stamp="20260401T000000Z", replicas=4)
        for payload in (old, newer, other_shape):
            write_loadtest_json(payload, tmp_path)
        current = _payload(stamp="20260501T000000Z")
        found = latest_comparable_loadtest(current, tmp_path)
        assert found is not None
        assert "20260301T000000Z" in found.name
        assert latest_comparable_loadtest(
            _payload(replicas=9), tmp_path
        ) is None
