"""Two-process store safety: the PR 7 multi-replica contract.

Each test shares ONE sqlite store file between this process and a real
child interpreter (not a thread — sqlite's locking story is
per-connection *per-process*), covering the shapes N ``cuba serve``
replicas produce: concurrent distinct-fingerprint writers, same-row
last-writer-wins upserts (never a torn read), eviction sweeping under a
live reader, and an SQLITE_BUSY storm from a peer camping on the write
lock (the bounded retry loop must converge, METERed as
``store.busy_retries``).
"""

import os
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.service.store import AnalysisStore
from repro.util.meter import METER

SRC = Path(__file__).resolve().parents[2] / "src"

#: Writer child: ``argv = path tag count blob_bytes``; records
#: ``{tag}-{i}`` rows whose result/bound/engine are self-consistent so
#: the parent can detect torn writes.
_WRITER = """
import sys
from repro.service.store import AnalysisStore

path, tag, count, blob = sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
budget = int(sys.argv[5]) if len(sys.argv) > 5 else None
kwargs = {} if budget is None else {"max_snapshot_bytes": budget}
store = AnalysisStore(path, **kwargs)
for i in range(count):
    store.record(
        f"{tag}-{i}",
        {"who": tag, "n": i},
        bound=i,
        engine=tag,
        snapshot=bytes(blob) if blob else None,
    )
store.close()
"""

#: Same-fingerprint child: hammers ONE row with self-consistent upserts.
_UPSERTER = """
import sys
from repro.service.store import AnalysisStore

path, tag, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = AnalysisStore(path)
for i in range(count):
    store.record("contested", {"who": tag, "n": i}, bound=i, engine=tag)
store.close()
"""


def _child(code: str, *args) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", code, *[str(arg) for arg in args]],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _join(proc: subprocess.Popen) -> None:
    output, _ = proc.communicate(timeout=120)
    assert proc.returncode == 0, f"child failed:\n{output}"


class TestTwoProcessWriters:
    def test_distinct_fingerprints_interleave_losslessly(self, tmp_path):
        path = tmp_path / "store.sqlite"
        proc = _child(_WRITER, path, "child", 25, 0)
        parent = AnalysisStore(path)
        for i in range(25):
            parent.record(f"parent-{i}", {"who": "parent", "n": i},
                          bound=i, engine="parent")
        _join(proc)
        for i in range(25):
            assert parent.get(f"parent-{i}").result == {"who": "parent", "n": i}
            assert parent.get(f"child-{i}").result == {"who": "child", "n": i}
        assert parent.stats()["entries"] == 50
        parent.close()

    def test_same_fingerprint_last_writer_wins_never_torn(self, tmp_path):
        path = tmp_path / "store.sqlite"
        proc = _child(_UPSERTER, path, "child", 60)
        parent = AnalysisStore(path)
        for i in range(60):
            parent.record("contested", {"who": "parent", "n": i},
                          bound=i, engine="parent")
            # Mid-race reads must always see one writer's row whole.
            entry = parent.get("contested")
            assert entry is not None and entry.result is not None
            assert entry.result["who"] == entry.engine
            assert entry.result["n"] == entry.bound
        _join(proc)
        final = parent.get("contested")
        assert final.result["who"] == final.engine
        assert final.result["n"] == final.bound == 59
        parent.close()

    def test_eviction_racing_a_reader(self, tmp_path):
        path = tmp_path / "store.sqlite"
        budget = 4096
        # The child's 1KB blobs overflow the budget every few records,
        # so its own post-record sweeps run while the parent reads.
        proc = _child(_WRITER, path, "churn", 40, 1024, budget)
        parent = AnalysisStore(path, max_snapshot_bytes=budget)
        deadline = time.monotonic() + 10
        while proc.poll() is None and time.monotonic() < deadline:
            for i in range(40):
                entry = parent.get(f"churn-{i}")
                # Miss (not yet written) or a whole row — never a crash
                # and never a half-written record.
                if entry is not None and entry.result is not None:
                    assert entry.result == {"who": "churn", "n": i}
        _join(proc)
        stats = parent.stats()
        assert stats["snapshot_bytes"] <= budget
        assert stats["entries"] == 40  # verdicts survive eviction
        parent.close()


class TestBusyStorm:
    def test_bounded_retry_converges_and_is_metered(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = AnalysisStore(
            path, busy_timeout=0.05, busy_retries=10, retry_base=0.02
        )
        store.record("warm", {"n": 0}, bound=0, engine="explicit")
        # A peer camping on the write lock: sqlite surfaces BUSY to
        # every store transaction until the timer releases it.
        camper = sqlite3.connect(path, check_same_thread=False)
        camper.execute("BEGIN IMMEDIATE")
        camper.execute("UPDATE meta SET value = value + 1 WHERE key = 'lru_clock'")
        release = threading.Timer(0.6, camper.commit)
        before = METER.snapshot()
        release.start()
        try:
            store.record("stormed", {"n": 1}, bound=1, engine="explicit")
        finally:
            release.join()
            camper.close()
        delta = METER.delta(before)
        assert delta.get("store.busy_retries", 0) >= 1
        assert store.get("stormed").result == {"n": 1}
        store.close()

    def test_exhausted_retries_surface_as_write_drop_not_crash(self, tmp_path):
        path = tmp_path / "store.sqlite"
        store = AnalysisStore(
            path, busy_timeout=0.01, busy_retries=1, retry_base=0.005
        )
        camper = sqlite3.connect(path, check_same_thread=False)
        camper.execute("BEGIN IMMEDIATE")
        camper.execute("UPDATE meta SET value = value + 1 WHERE key = 'lru_clock'")
        before = METER.snapshot()
        try:
            # record() treats an exhausted-busy DatabaseError as a
            # dropped write (store is a cache), never an exception.
            store.record("lost", {"n": 1}, bound=1, engine="explicit")
        finally:
            camper.rollback()
            camper.close()
        delta = METER.delta(before)
        assert delta.get("service.store_write_errors", 0) >= 1
        assert store.get("lost") is None
        # The store stays usable once the lock clears.
        store.record("recovered", {"n": 2}, bound=2, engine="explicit")
        assert store.get("recovered").result == {"n": 2}
        store.close()


def test_lru_clock_is_cross_process_monotonic(tmp_path):
    """Recency ranks from two connections never collide: the clock is
    a persisted counter bumped inside the write transaction, not an
    in-process timestamp."""
    path = tmp_path / "store.sqlite"
    a = AnalysisStore(path)
    b = AnalysisStore(path)
    for i in range(10):
        (a if i % 2 else b).record(f"tick-{i}", {"n": i}, bound=i, engine="x")
    conn = sqlite3.connect(path)
    ranks = [row[0] for row in conn.execute(
        "SELECT last_used FROM analyses ORDER BY rowid"
    )]
    conn.close()
    assert len(set(ranks)) == len(ranks), f"colliding LRU ranks: {ranks}"
    assert ranks == sorted(ranks), f"regressing LRU ranks: {ranks}"
    a.close()
    b.close()
