"""End-to-end observability: audit lines, /metrics, /trace, timings.

The server fixture mirrors ``test_server.py``; the process-executor
test drives :class:`ProcessAnalysisExecutor` directly so the span
shipping + adoption protocol is asserted at the layer that implements
it (worker ``JobOutcome.spans`` → parent :func:`trace.adopt`).
"""

import asyncio
import http.client
import json
import logging
import os
import threading

import pytest

from repro.cpds import format_cpds, parse_cpds
from repro.models import fig1_cpds
from repro.obs import trace
from repro.obs.logs import AUDIT_LOGGER
from repro.obs.prometheus import parse_text
from repro.service import (
    AnalysisService,
    AnalysisStore,
    ServiceClient,
    ServiceServer,
)
from repro.service.executor import EngineJob, ProcessAnalysisExecutor
from repro.service.server import parse_property_spec

FIG1 = format_cpds(fig1_cpds())


@pytest.fixture
def server(tmp_path):
    service = AnalysisService(AnalysisStore(tmp_path / "store.sqlite"), workers=2)
    server = ServiceServer(service, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    yield server
    server.request_shutdown()
    thread.join(20)
    assert not thread.is_alive(), "server failed to shut down"


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


@pytest.fixture
def audit_records():
    """Capture parsed audit records straight off the ``cuba.audit``
    logger (no reliance on propagation or handler setup)."""
    records: list[dict] = []

    class Capture(logging.Handler):
        def emit(self, record: logging.LogRecord) -> None:
            records.append(json.loads(record.getMessage()))

    handler = Capture(level=logging.INFO)
    logger = logging.getLogger(AUDIT_LOGGER)
    logger.addHandler(handler)
    previous = logger.level
    logger.setLevel(logging.INFO)
    yield records
    logger.removeHandler(handler)
    logger.setLevel(previous)


def _raw(server, method: str, path: str, payload: dict | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, response.headers, response.read()
    finally:
        connection.close()


class TestAudit:
    def test_every_submit_emits_one_audit_line(self, client, audit_records):
        response = client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        assert response["verdict"] == "unsafe"
        assert len(audit_records) == 1
        record = audit_records[0]
        assert record["fingerprint"] == response["fingerprint"]
        assert record["verdict"] == "unsafe"
        assert record["lane"] in ("explicit", "symbolic", "wuba")
        assert record["store"] == "miss"
        assert record["lease"] is None  # fresh run: nothing to pin
        assert record["engine_seconds"] >= 0.0
        assert record["queue_seconds"] >= 0.0
        assert record["total_seconds"] >= record["engine_seconds"]
        for field in ("requested", "backend", "resumed", "cached", "bound"):
            assert field in record

    def test_store_hit_audits_as_hit(self, client, audit_records):
        client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        assert [record["store"] for record in audit_records] == ["miss", "hit"]
        assert audit_records[1]["cached"] is True

    def test_resume_audits_lease_and_store_resume(self, client, audit_records):
        """A deeper resubmission resumes from the stored snapshot under
        a lease — both must show in the audit trail."""
        shallow = client.submit(FIG1, engine="explicit", max_rounds=4)
        assert shallow["verdict"] == "unknown"
        deeper = client.submit(FIG1, engine="explicit", max_rounds=8)
        assert deeper["resumed"] is True
        assert [record["store"] for record in audit_records] == ["miss", "resume"]
        assert audit_records[1]["lease"] == "acquired"

    def test_rejected_submit_emits_no_audit_line(self, client, audit_records):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            client.submit("not a cpds {{{")
        assert audit_records == []


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_with_request_histogram(self, client):
        client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        body = client.metrics()
        samples = parse_text(body)  # raises on any malformed line
        request_counts = samples["cuba_service_request_seconds_count"]
        by_lane = {dict(labels).get("lane"): value
                   for labels, value in request_counts.items()}
        assert sum(by_lane.values()) >= 1
        assert all(lane for lane in by_lane), "per-lane labels required"
        # Cumulative le buckets end at the count.
        buckets = samples["cuba_service_request_seconds_bucket"]
        for labels, value in request_counts.items():
            inf_key = tuple(sorted(labels + (("le", "+Inf"),)))
            assert buckets[inf_key] == value
        # METER counters ride along in the same scrape.
        assert any(name.endswith("_total") for name in samples)

    def test_content_type_is_prometheus_text(self, server, client):
        client.submit(FIG1, max_rounds=5)
        status, headers, _body = _raw(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")

    def test_http_route_label_is_bounded(self, server, client):
        _raw(server, "GET", "/definitely-not-a-route")
        client.submit(FIG1, max_rounds=5)
        samples = parse_text(client.metrics())
        routes = {
            dict(labels).get("route")
            for labels in samples.get("cuba_http_request_seconds_count", {})
        }
        assert "other" in routes  # unknown paths collapse, no cardinality leak
        assert "/submit" in routes


class TestTraceEndpoint:
    @pytest.fixture(autouse=True)
    def _isolation(self):
        trace.disable()
        trace.clear()
        yield
        trace.disable()
        trace.clear()

    def test_toggle_capture_export(self, server, client):
        status, _headers, body = _raw(server, "POST", "/trace", {"enabled": True})
        assert status == 200
        assert json.loads(body)["tracing"] is True

        client.submit(
            FIG1, property_spec="shared:3", engine="explicit", max_rounds=10
        )

        status, _headers, body = _raw(server, "GET", "/trace")
        assert status == 200
        doc = json.loads(body)
        names = [event["name"] for event in doc["traceEvents"]]
        assert "service.request" in names
        assert "service.engine_run" in names
        assert "lane.run" in names
        assert any(name.endswith(".level") for name in names)
        # The request span must be an ancestor of the engine run.
        by_id = {event["args"]["span_id"]: event for event in doc["traceEvents"]}
        engine = next(e for e in doc["traceEvents"]
                      if e["name"] == "service.engine_run")
        seen = set()
        cursor = engine["args"]["parent_id"]
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            cursor = by_id[cursor]["args"]["parent_id"]
        assert any(by_id[span]["name"] == "service.request" for span in seen)

        status, _headers, body = _raw(server, "POST", "/trace", {"enabled": False})
        assert json.loads(body)["tracing"] is False


class TestTimingFields:
    def test_submit_response_separates_engine_and_queue(self, client):
        response = client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        assert response["engine_seconds"] >= 0.0
        assert response["queue_seconds"] >= 0.0
        assert response["backend"]

    def test_status_surfaces_timings_when_done(self, client):
        import time

        ticket = client.submit(
            FIG1, property_spec="shared:3", max_rounds=10, wait=False
        )
        problem = ticket["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.status(problem)
            if status["status"] == "done":
                break
            time.sleep(0.05)
        assert status["status"] == "done"
        assert status["engine_seconds"] >= 0.0
        assert status["queue_seconds"] >= 0.0

    def test_cached_hit_is_request_scoped(self, client):
        """queue_seconds rides the per-request copy: two hits on the
        same stored entry must each get their own value, not share one
        mutated dict."""
        first = client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        second = client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        assert second["cached"] is True
        assert "queue_seconds" in first and "queue_seconds" in second


class TestProcessExecutorSpans:
    def test_worker_spans_reparent_under_dispatch(self):
        cpds = parse_cpds(FIG1)
        prop = parse_property_spec("shared:3")
        executor = ProcessAnalysisExecutor(workers=1)
        trace.clear()
        trace.enable()
        try:
            outcome = executor.run(
                EngineJob(
                    cpds=cpds, prop=prop, problem="span-ship",
                    engine="explicit", max_rounds=10,
                )
            )
        finally:
            trace.disable()
            executor.close()
        assert outcome.response["verdict"] == "unsafe"
        assert outcome.spans == [], "adopted spans must not ship twice"

        events = trace.take()
        by_id = {event["id"]: event for event in events}
        dispatch = [e for e in events if e["name"] == "executor.dispatch"]
        assert len(dispatch) == 1
        worker_events = [e for e in events if e["pid"] != os.getpid()]
        assert worker_events, "worker spans must come home"
        worker_names = {event["name"] for event in worker_events}
        assert "service.engine_run" in worker_names
        assert any(name.endswith(".level") for name in worker_names)
        # Zero orphans: every worker span resolves to a local parent
        # chain ending at the dispatch span.
        for event in worker_events:
            cursor = event
            while cursor["parent"] is not None:
                cursor = by_id[cursor["parent"]]
            assert cursor["id"] == dispatch[0]["id"]
