"""Content-addressed fingerprint properties.

The store key must collide exactly for semantically identical problems:
invariant under rule order, rule labels, construction history, and the
process-global symbol-intern order — and sensitive to any change of
rules, property, or engine config.
"""

import pytest

from repro.automata.intern import order_of
from repro.core.property import (
    AlwaysSafe,
    MutualExclusion,
    SharedStateReachability,
    VisiblePredicate,
)
from repro.cpds.cpds import CPDS
from repro.errors import FingerprintError
from repro.models import fig1_cpds
from repro.models.registry import smallest_per_row
from repro.pds.pds import PDS
from repro.service.fingerprint import cpds_digest, fingerprint


def _two_thread_cpds(rule_order=(0, 1, 2), labels=("f1", "f2", "f3")):
    pds1 = PDS(initial_shared=0, name="P1")
    rules = [
        (0, "a", 1, ("b",)),
        (1, "b", 0, ()),
        (0, "a", 0, ("a", "a")),
    ]
    for position in rule_order:
        src, read, dst, write = rules[position]
        pds1.rule(src, read, dst, write, label=labels[position])
    pds2 = PDS(initial_shared=0, name="P2")
    pds2.rule(0, "x", 1, ("x",), label="g")
    return CPDS([pds1, pds2], initial_stacks=[("a",), ("x",)])


class TestCollisions:
    def test_identical_builds_collide(self):
        assert fingerprint(_two_thread_cpds()) == fingerprint(_two_thread_cpds())

    def test_rule_insertion_order_is_canonicalized(self):
        assert fingerprint(_two_thread_cpds((0, 1, 2))) == fingerprint(
            _two_thread_cpds((2, 0, 1))
        )

    def test_rule_labels_are_semantically_irrelevant(self):
        assert fingerprint(_two_thread_cpds(labels=("f1", "f2", "f3"))) == fingerprint(
            _two_thread_cpds(labels=("x", "y", "z"))
        )

    def test_global_intern_order_does_not_leak_in(self):
        """The process-global symbol order depends on interning history;
        the fingerprint must not (a persistent store outlives the
        process)."""
        before = fingerprint(_two_thread_cpds())
        # Perturb the global order with symbols from this CPDS's
        # alphabet interned in a hostile order.
        for symbol in ("x", "b", "a", "zzz_unrelated"):
            order_of(symbol)
        assert fingerprint(_two_thread_cpds()) == before

    def test_registry_rows_are_fingerprintable_and_distinct(self):
        prints = {}
        for bench in smallest_per_row():
            cpds, prop = bench.build()
            prints[bench.row] = fingerprint(cpds, prop, {"engine": "auto"})
        assert len(set(prints.values())) == len(prints)


class TestSensitivity:
    def test_different_rules_differ(self):
        other = _two_thread_cpds()
        changed = _two_thread_cpds(rule_order=(0, 1))  # one rule dropped
        assert fingerprint(other) != fingerprint(changed)

    def test_property_changes_the_fingerprint(self):
        cpds = fig1_cpds()
        assert fingerprint(cpds, SharedStateReachability({3})) != fingerprint(
            cpds, SharedStateReachability({2})
        )
        assert fingerprint(cpds, AlwaysSafe()) != fingerprint(
            cpds, SharedStateReachability({3})
        )

    def test_config_changes_the_fingerprint(self):
        cpds = fig1_cpds()
        assert fingerprint(cpds, None, {"engine": "explicit"}) != fingerprint(
            cpds, None, {"engine": "symbolic"}
        )
        assert fingerprint(cpds, None, {"engine": "explicit"}) != fingerprint(
            cpds, None, None
        )

    def test_cpds_digest_ignores_property(self):
        cpds = fig1_cpds()
        assert cpds_digest(cpds) == cpds_digest(fig1_cpds())
        assert cpds_digest(cpds) != fingerprint(cpds)


class TestPropertyTokens:
    def test_shared_reachability_token_is_order_free(self):
        assert (
            SharedStateReachability({1, 2, 3}).fingerprint_token()
            == SharedStateReachability({3, 2, 1}).fingerprint_token()
        )

    def test_mutex_token_covers_thread_map(self):
        first = MutualExclusion({0: {"c"}, 1: {"c"}})
        second = MutualExclusion({0: {"c"}, 1: {"d"}})
        assert first.fingerprint_token() != second.fingerprint_token()

    def test_opaque_predicate_is_refused(self):
        prop = VisiblePredicate(lambda v: False, "opaque")
        with pytest.raises(FingerprintError):
            fingerprint(fig1_cpds(), prop)

    def test_non_scalar_config_is_refused(self):
        with pytest.raises(FingerprintError):
            fingerprint(fig1_cpds(), None, {"bad": object()})
