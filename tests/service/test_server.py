"""HTTP layer + end-to-end service smoke.

The in-process tests start the asyncio server on an ephemeral port and
drive it through :class:`ServiceClient`; the subprocess test launches
``cuba serve`` for the full process-boundary story (cross-process
fingerprint stability included).  The concurrent-submission test is the
CI ``service-smoke`` acceptance check: a quick registry row submitted
twice concurrently yields ONE METER engine run and identical verdicts.
"""

import asyncio
import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.cpds import format_cpds
from repro.errors import ServiceError
from repro.models import fig1_cpds
from repro.models.dekker import dekker_source
from repro.service import (
    AnalysisService,
    AnalysisStore,
    ServiceClient,
    ServiceServer,
)

FIG1 = format_cpds(fig1_cpds())
#: A quick Table 2 registry row (9/Dekker) in submittable source form.
DEKKER = dekker_source()


@pytest.fixture
def server(tmp_path):
    service = AnalysisService(AnalysisStore(tmp_path / "store.sqlite"), workers=2)
    server = ServiceServer(service, port=0)
    ready = threading.Event()

    def run() -> None:
        async def main() -> None:
            await server.start()
            ready.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    yield server
    server.request_shutdown()
    thread.join(20)
    assert not thread.is_alive(), "server failed to shut down"


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"]["open"]

    def test_submit_wait_roundtrip(self, client):
        response = client.submit(FIG1, property_spec="shared:3", max_rounds=10)
        assert response["verdict"] == "unsafe"
        assert response["bound"] == 2
        assert response["witness"]
        assert response["trace"]

    def test_submit_nowait_then_poll(self, client):
        ticket = client.submit(
            bp_text=DEKKER, engine="symbolic", max_rounds=8, wait=False
        )
        assert ticket["status"] in ("queued", "running")
        problem = ticket["id"]
        deadline = time.monotonic() + 60
        result = None
        while result is None and time.monotonic() < deadline:
            result = client.result(problem)
            if result is None:
                time.sleep(0.05)
        assert result is not None, "analysis never finished"
        assert result["verdict"] == "safe"
        assert client.status(problem)["status"] == "done"

    def test_failed_async_job_is_pollable(self, server, client, monkeypatch):
        """A crash inside an async analysis must surface as a 'failed'
        status and a non-2xx /result — never a forever-'running' job or
        a 404."""
        from repro.errors import CubaError

        def boom(request, prepared=None, enqueued_at=None):
            raise CubaError("engine exploded mid-run")

        monkeypatch.setattr(server.service, "run", boom)
        ticket = client.submit(FIG1, wait=False)
        problem = ticket["id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.status(problem)["status"] == "failed":
                break
            time.sleep(0.05)
        status = client.status(problem)
        assert status["status"] == "failed"
        assert "engine exploded" in status["error"]
        with pytest.raises(ServiceError, match="engine exploded"):
            client.result(problem)

    def test_unknown_id_is_404(self, client):
        with pytest.raises(ServiceError):
            client.status("feedbeef")
        with pytest.raises(ServiceError):
            client.result("feedbeef")

    def test_bad_requests_are_400_not_crashes(self, client):
        with pytest.raises(ServiceError):
            client.submit("not a cpds at all {{{")
        with pytest.raises(ServiceError):
            client.submit(FIG1, engine="quantum")
        with pytest.raises(ServiceError):
            client.submit(FIG1, property_spec="gibberish")
        # The server survives all of the above.
        assert client.health()["status"] == "ok"

    def test_unroutable_path_is_404(self, client):
        status, _payload = client._request("GET", "/nope")
        assert status == 404

    def test_oversized_request_body_is_refused(self, server):
        """A hostile Content-Length must be refused up front, not
        buffered into memory."""
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /submit HTTP/1.1\r\n"
                b"Content-Length: 99999999999\r\n\r\n"
            )
            reply = raw.recv(4096)
        assert reply.split(b"\r\n", 1)[0].endswith(b"400 Bad Request")
        assert b"exceeds" in reply

    def test_endless_header_stream_is_refused(self, server):
        """The header section is bounded too — an attacker streaming
        header lines forever must be cut off, not buffered."""
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as raw:
            raw.sendall(b"POST /submit HTTP/1.1\r\n")
            try:
                for index in range(4096):
                    raw.sendall(b"X-flood-%d: padding\r\n" % index)
            except OSError:
                pass  # server already refused and closed — that's the point
            reply = b""
            try:
                raw.sendall(b"\r\n")
                reply = raw.recv(4096)
            except OSError:
                pass
        assert not reply or b"400" in reply.split(b"\r\n", 1)[0]


def _meter_delta(client, before):
    after = client.meter()
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


class TestSmoke:
    def test_concurrent_identical_submissions_one_engine_run(self, client):
        """The service-smoke lane's core assertion (see module doc).
        The METER window is read as a delta: the counters are process
        totals and other tests share the process."""
        before = client.meter()
        with ThreadPoolExecutor(2) as pool:
            futures = [
                pool.submit(
                    client.submit, bp_text=DEKKER, engine="auto", max_rounds=25
                )
                for _ in range(2)
            ]
            responses = [future.result() for future in futures]
        assert responses[0]["verdict"] == responses[1]["verdict"] == "safe"
        assert responses[0]["bound"] == responses[1]["bound"]
        delta = _meter_delta(client, before)
        assert delta.get("service.engine_runs") == 1
        # Exactly one of the two joined the other's in-flight run (or,
        # on an extreme scheduling edge, hit the store the run filled).
        assert (
            delta.get("service.dedup_joins", 0)
            + delta.get("service.store_hits", 0)
            == 1
        )

    def test_resubmission_clears_stale_job_response(self, server, client):
        """Re-registering a fingerprint for a deeper run must drop the
        previous run's response — a poller must never be handed the
        stale shallower verdict while the new run is in flight."""
        finished = client.submit(FIG1, engine="explicit", max_rounds=2)
        problem = finished["fingerprint"]
        job = server._jobs[problem]
        assert job["status"] == "done" and job["response"] is not None
        refreshed = server._record_job(problem)
        assert refreshed["status"] == "queued"
        assert refreshed["response"] is None and refreshed["error"] is None

    def test_resubmission_after_completion_hits_the_store(self, client):
        before = client.meter()
        first = client.submit(bp_text=DEKKER, engine="auto", max_rounds=25)
        second = client.submit(bp_text=DEKKER, engine="auto", max_rounds=25)
        assert not first["cached"] and second["cached"]
        assert _meter_delta(client, before).get("service.engine_runs") == 1


@pytest.mark.skipif(os.name != "posix", reason="subprocess smoke is posix-only")
def test_cuba_serve_subprocess_end_to_end(tmp_path):
    """`cuba serve` + `cuba submit` across real process boundaries:
    the restarted-client fingerprint must land on the server's store
    entry, and shutdown must be graceful."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--store", str(tmp_path / "store.sqlite"),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        client = ServiceClient(port=port, timeout=60)
        for _ in range(200):
            try:
                client.health()
                break
            except ServiceError:
                time.sleep(0.05)
        else:
            raise AssertionError("cuba serve never became healthy")

        cpds_file = tmp_path / "fig1.cpds"
        cpds_file.write_text(FIG1)

        def submit() -> subprocess.CompletedProcess:
            return subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", "submit",
                    str(cpds_file), "--property", "shared:3",
                    "--port", str(port),
                ],
                env=env, capture_output=True, text=True, timeout=120,
            )

        first = submit()
        second = submit()
        assert first.returncode == second.returncode == 1, first.stdout
        assert "fresh run" in first.stdout
        assert "store hit" in second.stdout
        assert client.meter().get("service.engine_runs") == 1
        client.shutdown()
        assert server.wait(timeout=30) == 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
