"""CLI tests (driven through main() with captured stdout)."""

import pytest

from repro.cli import main
from repro.cpds import format_cpds
from repro.models import fig1_cpds

FIG1 = format_cpds(fig1_cpds())

BAD_BP = """
decl flag;
void setter() { flag := 1; }
void checker() { assert (!flag); }
void main() { thread_create(&setter); thread_create(&checker); }
"""


@pytest.fixture
def fig1_file(tmp_path):
    path = tmp_path / "fig1.cpds"
    path.write_text(FIG1)
    return str(path)


@pytest.fixture
def bad_bp_file(tmp_path):
    path = tmp_path / "bad.bp"
    path.write_text(BAD_BP)
    return str(path)


class TestVerify:
    def test_safe_cpds_exit_zero(self, fig1_file, capsys):
        code = main(["verify", fig1_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "FCR: holds" in out
        assert "safe" in out

    def test_unsafe_property_exit_one(self, fig1_file, capsys):
        code = main(["verify", fig1_file, "--property", "shared:3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "unsafe" in out
        assert "witness trace" in out

    def test_explicit_engine_diverges_exit_two(self, fig1_file, capsys):
        code = main(["verify", fig1_file, "--engine", "explicit", "--max-rounds", "5"])
        assert code == 2

    def test_symbolic_engine(self, fig1_file, capsys):
        code = main(["verify", fig1_file, "--engine", "symbolic"])
        assert code == 0

    def test_boolean_program(self, bad_bp_file, capsys):
        code = main(["verify", bad_bp_file])
        out = capsys.readouterr().out
        assert code == 1
        assert "ERR" in out

    def test_boolean_init_flag(self, tmp_path, capsys):
        path = tmp_path / "p.bp"
        path.write_text(
            "decl x; void w() { assert (x); } void main() { thread_create(&w); }"
        )
        assert main(["verify", str(path), "--init", "x=1"]) == 0
        assert main(["verify", str(path), "--init", "x=*"]) == 1

    def test_bad_property_spec(self, fig1_file):
        with pytest.raises(SystemExit):
            main(["verify", fig1_file, "--property", "nonsense"])

    def test_missing_file_exit_three(self, capsys):
        assert main(["verify", "/nonexistent.cpds"]) == 3
        assert "error:" in capsys.readouterr().err


class TestWitness:
    def test_witness_prints_validated_trace(self, fig1_file, capsys):
        code = main(["verify", fig1_file, "--property", "shared:3", "--witness"])
        out = capsys.readouterr().out
        assert code == 1
        assert "validated against the CPDS step semantics" in out
        assert "start  ⟨0|1,4⟩" in out
        # One line per step, thread-tagged.
        assert "T1 f1" in out and "T2 b3" in out

    def test_witness_on_safe_run_reports_nothing_to_show(self, fig1_file, capsys):
        code = main(["verify", fig1_file, "--witness"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no witness: the property was not refuted" in out

    def test_witness_on_symbolic_engine_explains_absence(self, fig1_file, capsys):
        code = main(
            ["verify", fig1_file, "--property", "shared:3",
             "--engine", "symbolic", "--witness"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no witness trace recorded" in out

    def test_witness_with_report(self, fig1_file, capsys):
        code = main(
            ["verify", fig1_file, "--property", "shared:3",
             "--report", "--witness"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "validated against the CPDS step semantics" in out


class TestServiceCommands:
    def test_serve_and_submit_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "9999", "--store", "x.sqlite", "--workers", "3"]
        )
        assert args.handler.__name__ == "cmd_serve"
        assert args.port == 9999 and args.workers == 3
        args = parser.parse_args(
            ["submit", "file.cpds", "--engine", "explicit", "--no-wait"]
        )
        assert args.handler.__name__ == "cmd_submit"
        # --engine is the pre-lane spelling, kept as an alias of --lane.
        assert args.lane == "explicit" and args.no_wait
        args = parser.parse_args(["submit", "file.cpds", "--lane", "wuba"])
        assert args.lane == "wuba"

    def test_submit_without_server_reports_cleanly(self, fig1_file, capsys):
        # Port 9 (discard) is never a cuba service; the CubaError path
        # must exit 3 with a clean message, not a traceback.
        code = main(["submit", fig1_file, "--port", "9"])
        assert code == 3
        assert "error:" in capsys.readouterr().err


class TestFcr:
    def test_fcr_holds(self, fig1_file, capsys):
        assert main(["fcr", fig1_file]) == 0
        out = capsys.readouterr().out
        assert "FCR holds" in out
        assert "loop-free" in out

    def test_fcr_fails(self, tmp_path, capsys):
        path = tmp_path / "pump.cpds"
        path.write_text(
            "init: 0\nthread T\n  stack: a\n  rule (0, a) -> (0, a a)\n"
        )
        assert main(["fcr", str(path)]) == 1
        assert "infinite" in capsys.readouterr().out


class TestTable:
    def test_fig1_table(self, fig1_file, capsys):
        assert main(["table", fig1_file, "--levels", "4"]) == 0
        out = capsys.readouterr().out
        assert "⟨0|1,4⟩" in out
        assert "⟨3|2,46⟩" in out  # new at k = 2
        # Plateau row at k = 3 in the visible column: marker for "empty".
        assert "·" in out


class TestBench:
    def test_single_row(self, capsys):
        assert main(["bench", "--rows", "9"]) == 0
        out = capsys.readouterr().out
        assert "9/Dekker" in out
        assert "safe" in out
