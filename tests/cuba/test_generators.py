"""Tests for the generator set G (Eq. 2) — golden values from Ex. 14."""

from repro.cpds import VisibleState
from repro.cuba import compute_z, generator_analysis
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import EMPTY


def vs(shared, *tops):
    return VisibleState(shared, tuple(tops))


class TestGeneratorAnalysisFig1:
    def test_ingredients(self):
        analysis = generator_analysis(fig1_cpds())
        assert analysis.pop_targets == (frozenset(), frozenset({0}))
        assert analysis.emerging == (frozenset(), frozenset({6}))

    def test_paper_listed_generators(self):
        # Ex. 14: G = {⟨0|1,ε⟩, ⟨0|1,6⟩, ⟨0|2,ε⟩, ⟨0|2,6⟩}.
        analysis = generator_analysis(fig1_cpds())
        for generator in [
            vs(0, 1, EMPTY),
            vs(0, 1, 6),
            vs(0, 2, EMPTY),
            vs(0, 2, 6),
        ]:
            assert analysis.is_generator(generator), str(generator)

    def test_non_generators(self):
        analysis = generator_analysis(fig1_cpds())
        assert not analysis.is_generator(vs(0, 1, 4))  # σ2 not emerging
        assert not analysis.is_generator(vs(1, 1, 6))  # 1 not a pop target
        assert not analysis.is_generator(vs(3, 2, 4))

    def test_g_intersect_z_golden(self):
        # Ex. 14: G ∩ Z = {⟨0|1,ε⟩, ⟨0|1,6⟩}.
        cpds = fig1_cpds()
        analysis = generator_analysis(cpds)
        assert analysis.intersect(compute_z(cpds)) == frozenset(
            {vs(0, 1, EMPTY), vs(0, 1, 6)}
        )


class TestGeneratorAnalysisFig2:
    def test_ingredients(self):
        analysis = generator_analysis(fig2_cpds())
        # foo pops via f5 into shared 1; push f3 writes 4 underneath.
        assert analysis.pop_targets[0] == frozenset({1})
        assert analysis.emerging[0] == frozenset({4})
        # bar pops via b9 into shared 0; push b7 writes 8 underneath.
        assert analysis.pop_targets[1] == frozenset({0})
        assert analysis.emerging[1] == frozenset({8})

    def test_membership_examples(self):
        analysis = generator_analysis(fig2_cpds())
        assert analysis.is_generator(vs(1, EMPTY, 6))
        assert analysis.is_generator(vs(1, 4, 8))
        assert analysis.is_generator(vs(0, 2, 8))
        assert analysis.is_generator(vs(0, 5, EMPTY))
        assert not analysis.is_generator(vs("⊥", 2, 6))
        assert not analysis.is_generator(vs(0, 4, 6))  # wrong thread/symbol mix


class TestUpwardClosureRemark:
    def test_any_thread_suffices(self):
        """Eq. (2) is an existential over threads: one witness thread is
        enough regardless of the other components."""
        analysis = generator_analysis(fig1_cpds())
        # thread 2 qualifies; thread 1's symbol is arbitrary (even junk).
        assert analysis.is_generator(vs(0, "junk", 6))
