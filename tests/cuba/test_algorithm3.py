"""Tests for Alg. 3 — the Ex. 14 run is reproduced exactly."""

import pytest

from repro.core import AlwaysSafe, MutualExclusion, SharedStateReachability, Verdict
from repro.cpds import VisibleState
from repro.cuba import algorithm3
from repro.models import fig1_cpds, fig2_cpds
from repro.reach import ExplicitReach


def vs(shared, *tops):
    return VisibleState(shared, tuple(tops))


class TestExample14:
    """Alg. 3 on Fig. 1: plateau at 2 rejected, collapse proved at 5."""

    @pytest.fixture(scope="class")
    def result(self):
        return algorithm3(fig1_cpds(), AlwaysSafe(), engine="explicit", max_rounds=20)

    def test_safe_at_bound_5(self, result):
        assert result.verdict is Verdict.SAFE
        assert result.bound == 5

    def test_first_plateau_rejected_with_missing_generator(self, result):
        rejected = result.stats["plateaus_rejected"]
        assert len(rejected) == 1
        assert rejected[0]["k"] == 2
        assert rejected[0]["missing"] == frozenset({vs(0, 1, 6)})

    def test_generator_set_sizes(self, result):
        assert result.stats["Z"] == 8      # Ex. 13
        assert result.stats["G∩Z"] == 2    # Ex. 14

    def test_symbolic_engine_agrees(self):
        result = algorithm3(fig1_cpds(), AlwaysSafe(), engine="symbolic", max_rounds=20)
        assert result.verdict is Verdict.SAFE
        assert result.bound == 5


class TestUnsafeDetection:
    def test_error_reported_at_minimal_bound(self):
        # Shared state 3 first appears in R2 (Fig. 1 table).
        result = algorithm3(
            fig1_cpds(), SharedStateReachability({3}), engine="explicit"
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2
        assert result.witness == vs(3, 2, 4)

    def test_explicit_unsafe_carries_trace(self):
        result = algorithm3(
            fig1_cpds(), SharedStateReachability({3}), engine="explicit"
        )
        assert result.trace is not None
        assert result.trace.target.visible() == result.witness

    def test_symbolic_unsafe_same_bound(self):
        result = algorithm3(
            fig1_cpds(), SharedStateReachability({3}), engine="symbolic"
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2

    def test_initial_violation(self):
        result = algorithm3(
            fig1_cpds(), SharedStateReachability({0}), engine="explicit"
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 0


class TestFig2Symbolic:
    """The non-FCR program: only the symbolic engine concludes."""

    def test_explicit_engine_reports_divergence(self):
        result = algorithm3(
            fig2_cpds(),
            AlwaysSafe(),
            engine="explicit",
            max_states_per_context=500,
        )
        assert result.verdict is Verdict.UNKNOWN
        assert "diverged" in result.message

    def test_symbolic_converges(self):
        result = algorithm3(fig2_cpds(), AlwaysSafe(), engine="symbolic", max_rounds=12)
        assert result.verdict is Verdict.SAFE
        # T(Sk) collapses at k = 2 with our encoding (Ex. 8: R2 = R3).
        assert result.bound == 2

    def test_race_freedom_property(self):
        # foo poised to set x:=1 (top 5) and bar poised to set x:=0
        # (top 9) can never be armed simultaneously.
        prop = MutualExclusion({0: {5}, 1: {9}})
        result = algorithm3(fig2_cpds(), prop, engine="symbolic", max_rounds=12)
        assert result.verdict is Verdict.SAFE

    def test_reachable_visible_state_refuted(self):
        # ⟨1|4,9⟩ is reachable (Ex. 8) — property claiming otherwise fails.
        prop = MutualExclusion({0: {4}, 1: {9}})
        result = algorithm3(fig2_cpds(), prop, engine="symbolic", max_rounds=12)
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2


class TestEngineParameter:
    def test_prepared_engine_accepted(self):
        engine = ExplicitReach(fig1_cpds())
        result = algorithm3(fig1_cpds(), AlwaysSafe(), engine=engine)
        assert result.verdict is Verdict.SAFE

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(ValueError):
            algorithm3(fig1_cpds(), AlwaysSafe(), engine="quantum")

    def test_budget_exhaustion_returns_unknown(self):
        result = algorithm3(fig1_cpds(), AlwaysSafe(), engine="explicit", max_rounds=2)
        assert result.verdict is Verdict.UNKNOWN
