"""Tests for the context-bounded baseline (the Fig. 5 comparator)."""

import pytest

from repro.core import AlwaysSafe, SharedStateReachability, Verdict
from repro.cuba import context_bounded_analysis
from repro.models import fig1_cpds, fig2_cpds


class TestRefutation:
    def test_finds_bug_at_minimal_bound(self):
        result = context_bounded_analysis(
            fig1_cpds(), SharedStateReachability({3}), bound=5
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2

    def test_explicit_engine_agrees(self):
        result = context_bounded_analysis(
            fig1_cpds(), SharedStateReachability({3}), bound=5, engine="explicit"
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2

    def test_bug_beyond_bound_slips_through(self):
        # Shared 3 needs 2 contexts; with bound 1 CBA misses it.
        result = context_bounded_analysis(
            fig1_cpds(), SharedStateReachability({3}), bound=1
        )
        assert result.verdict is Verdict.UNKNOWN

    def test_initial_violation(self):
        result = context_bounded_analysis(
            fig1_cpds(), SharedStateReachability({0}), bound=3
        )
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 0


class TestCannotProve:
    def test_safe_program_stays_unknown(self):
        result = context_bounded_analysis(fig1_cpds(), AlwaysSafe(), bound=8)
        assert result.verdict is Verdict.UNKNOWN
        assert "cannot prove" in result.message

    def test_handles_non_fcr_with_symbolic(self):
        result = context_bounded_analysis(fig2_cpds(), AlwaysSafe(), bound=3)
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats["visible_states"] > 0

    def test_explicit_on_non_fcr_reports_divergence(self):
        result = context_bounded_analysis(
            fig2_cpds(), AlwaysSafe(), bound=3,
            engine="explicit", max_states_per_context=500,
        )
        assert result.verdict is Verdict.UNKNOWN
        assert "diverged" in result.message

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            context_bounded_analysis(fig1_cpds(), AlwaysSafe(), 2, engine="bdd")
