"""Tests for the Cuba front-end (Sec. 6 procedure)."""

from repro.core import AlwaysSafe, SharedStateReachability, Verdict
from repro.cpds import CPDS
from repro.cuba import Cuba
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import PDS


class TestFig1:
    def test_fcr_route_taken(self):
        report = Cuba(fig1_cpds(), AlwaysSafe()).verify(max_rounds=20)
        assert report.fcr.holds
        assert report.verdict is Verdict.SAFE

    def test_alg3_wins_since_rk_diverges(self):
        report = Cuba(fig1_cpds(), AlwaysSafe()).verify(max_rounds=20)
        assert report.winner == "alg3(T(Rk))"
        assert report.trk_bound == 5
        assert report.rk_bound is None  # interrupted, Table 2 style "≥"
        assert report.bound_text("trk") == "5"
        assert report.bound_text("rk").startswith("≥")

    def test_unsafe_with_trace(self):
        report = Cuba(fig1_cpds(), SharedStateReachability({3})).verify()
        assert report.verdict is Verdict.UNSAFE
        assert report.result.bound == 2
        assert report.result.trace is not None


class TestFig2:
    def test_symbolic_route_taken(self):
        report = Cuba(fig2_cpds(), AlwaysSafe()).verify(max_rounds=12)
        assert not report.fcr.holds
        assert report.winner == "alg3(T(Sk))"
        assert report.verdict is Verdict.SAFE
        assert report.trk_bound == 2


class TestScheme1Winner:
    def test_terminating_program_won_by_scheme1(self):
        # Both threads stop after one context each; Rk collapses quickly
        # and (Rk) plateau fires — possibly alongside Alg. 3.
        one = PDS(initial_shared=0, shared_states={0, 1, 2})
        one.rule(0, "a", 1, ("b",))
        two = PDS(initial_shared=0, shared_states={0, 1, 2})
        two.rule(1, "x", 2, ())
        cpds = CPDS([one, two], initial_stacks=[("a",), ("x",)])
        report = Cuba(cpds, AlwaysSafe()).verify()
        assert report.verdict is Verdict.SAFE
        assert report.rk_bound is not None or report.trk_bound is not None

    def test_initial_violation_short_circuits(self):
        report = Cuba(fig1_cpds(), SharedStateReachability({0})).verify()
        assert report.verdict is Verdict.UNSAFE
        assert report.result.bound == 0

    def test_budget_exhaustion(self):
        # Strip the generator machinery's chance: property safe but
        # sequence diverging and budget tiny.
        report = Cuba(fig1_cpds(), AlwaysSafe()).verify(max_rounds=2)
        assert report.verdict is Verdict.UNKNOWN
        assert report.bound_text("rk") == "≥2"
