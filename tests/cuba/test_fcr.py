"""Tests for the FCR condition — golden verdicts from Fig. 4 / Ex. 15."""

from repro.cpds import CPDS
from repro.cuba import check_fcr, thread_shallow_psa
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import PDS


class TestFig4Verdicts:
    def test_fig1_satisfies_fcr(self):
        report = check_fcr(fig1_cpds())
        assert report.holds
        assert report.thread_finite == (True, True)
        # Fig. 4 (left two): the PSAs are loop-free.
        assert report.thread_has_loop == (False, False)

    def test_fig2_violates_fcr(self):
        report = check_fcr(fig2_cpds())
        assert not report.holds
        assert report.thread_finite == (False, False)
        # Fig. 4 (right two): self-loops in both automata.
        assert report.thread_has_loop == (True, True)

    def test_report_str(self):
        assert "holds" in str(check_fcr(fig1_cpds()))
        assert "fails" in str(check_fcr(fig2_cpds()))


class TestShallowPsa:
    def test_fig1_thread_languages_finite(self):
        for pds in fig1_cpds().threads:
            assert thread_shallow_psa(pds).language_is_finite()

    def test_fig2_thread_languages_infinite(self):
        for pds in fig2_cpds().threads:
            assert not thread_shallow_psa(pds).language_is_finite()

    def test_shallow_psa_accepts_seed_configs(self):
        pds = fig1_cpds().thread(1)
        psa = thread_shallow_psa(pds)
        for shared in pds.shared_states:
            assert psa.accepts_config(shared, ())
            for symbol in pds.alphabet:
                assert psa.accepts_config(shared, (symbol,))


class TestMixedCases:
    def test_one_bad_thread_spoils_fcr(self):
        good = PDS(initial_shared=0, shared_states={0, 1})
        good.rule(0, "a", 1, ("b",))
        bad = PDS(initial_shared=0, shared_states={0, 1})
        bad.rule(0, "x", 0, ("x", "x"))  # pumps within one context
        report = check_fcr(CPDS([good, bad], initial_stacks=[("a",), ("x",)]))
        assert report.thread_finite == (True, False)
        assert not report.holds

    def test_recursion_with_bounded_depth_is_fcr(self):
        # Pushes exist but every push is immediately popped: depth ≤ 2.
        pds = PDS(initial_shared=0, shared_states={0, 1})
        pds.rule(0, "a", 1, ("c", "b"))  # call
        pds.rule(1, "c", 0, ())          # immediate return
        report = check_fcr(CPDS([pds], initial_stacks=[("a",)]))
        assert report.holds

    def test_non_recursive_threads_trivially_fcr(self):
        pds = PDS(initial_shared=0, shared_states={0, 1})
        pds.rule(0, "a", 1, ("b",))
        pds.rule(1, "b", 0, ("a",))
        assert check_fcr(CPDS([pds], initial_stacks=[("a",)])).holds
