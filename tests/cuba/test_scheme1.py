"""Tests for Scheme 1(Rk)."""

from repro.core import AlwaysSafe, MutualExclusion, SharedStateReachability, Verdict
from repro.cpds import CPDS
from repro.cuba import scheme1_rk, scheme1_sk
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import PDS


def two_phase_cpds():
    """A tiny terminating CPDS: thread 1 flips 0→1, thread 2 then 1→2."""
    one = PDS(initial_shared=0, shared_states={0, 1, 2})
    one.rule(0, "a", 1, ("a",))
    two = PDS(initial_shared=0, shared_states={0, 1, 2})
    two.rule(1, "x", 2, ("y",))
    return CPDS([one, two], initial_stacks=[("a",), ("x",)])


class TestSafeAndUnsafe:
    def test_finite_program_proved_safe(self):
        result = scheme1_rk(two_phase_cpds(), AlwaysSafe())
        assert result.verdict is Verdict.SAFE
        # R3 = R2: both threads done after two contexts.
        assert result.bound == 3

    def test_unsafe_reports_bound_and_witness(self):
        result = scheme1_rk(two_phase_cpds(), SharedStateReachability({2}))
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2  # needs both threads: two contexts
        assert result.witness.shared == 2

    def test_unsafe_carries_replayable_trace(self):
        result = scheme1_rk(two_phase_cpds(), SharedStateReachability({2}))
        assert result.trace is not None
        assert result.trace.n_contexts <= 2
        assert result.trace.target.visible() == result.witness

    def test_violation_at_initial_state(self):
        result = scheme1_rk(two_phase_cpds(), SharedStateReachability({0}))
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 0

    def test_stats_populated(self):
        result = scheme1_rk(two_phase_cpds(), AlwaysSafe())
        assert result.stats["global_states"] >= 3
        assert result.stats["levels"][0] == 1


class TestDivergence:
    def test_fig1_diverges(self):
        # Ex. 5: (Rk) diverges on Fig. 1 — stacks grow forever.
        result = scheme1_rk(fig1_cpds(), AlwaysSafe(), max_rounds=10)
        assert result.verdict is Verdict.UNKNOWN
        assert result.bound == 10

    def test_fig2_trips_fcr_guard(self):
        # Fig. 2 violates FCR: a single context already explodes.
        result = scheme1_rk(
            fig2_cpds(), AlwaysSafe(), max_rounds=5, max_states_per_context=500
        )
        assert result.verdict is Verdict.UNKNOWN
        assert "diverged" in result.message

    def test_unsafe_found_before_divergence(self):
        # Fig. 1 reaches shared state 3 at bound 2 even though the
        # sequence as a whole diverges.
        result = scheme1_rk(fig1_cpds(), SharedStateReachability({3}), max_rounds=10)
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2
        assert str(result.trace).count("-->") == len(result.trace.steps)


class TestScheme1Symbolic:
    """scheme1_sk — Scheme 1 over symbolic state sets (extension)."""

    def test_safe_without_fcr(self):
        # Fig. 2 violates FCR, yet the symbolic state set collapses
        # (Ex. 8: R2 = R3; dedup detects it a couple of rounds later).
        result = scheme1_sk(fig2_cpds(), AlwaysSafe(), max_rounds=10)
        assert result.verdict is Verdict.SAFE
        assert result.bound <= 6
        assert result.stats["symbolic_states"] > 0

    def test_diverges_on_growing_languages(self):
        # Fig. 1's thread-2 stack language grows forever: no collapse.
        result = scheme1_sk(fig1_cpds(), AlwaysSafe(), max_rounds=8)
        assert result.verdict is Verdict.UNKNOWN

    def test_refutes_with_minimal_bound(self):
        result = scheme1_sk(fig1_cpds(), SharedStateReachability({3}), max_rounds=8)
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2

    def test_refutes_fig2_race(self):
        prop = MutualExclusion({0: {4}, 1: {9}})  # ⟨1|4,9⟩ is reachable
        result = scheme1_sk(fig2_cpds(), prop, max_rounds=8)
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 2

    def test_violation_at_initial_state(self):
        from repro.models.figure2 import BOTTOM

        result = scheme1_sk(fig2_cpds(), SharedStateReachability({BOTTOM}))
        assert result.verdict is Verdict.UNSAFE
        assert result.bound == 0

    def test_agrees_with_explicit_on_terminating_program(self):
        cpds = two_phase_cpds()
        explicit = scheme1_rk(cpds, AlwaysSafe())
        symbolic = scheme1_sk(cpds, AlwaysSafe())
        assert explicit.verdict is Verdict.SAFE
        assert symbolic.verdict is Verdict.SAFE
