"""Tests for the Z-based quick check (Lemma 12 as a verifier)."""

from repro.core import AlwaysSafe, SharedStateReachability, Verdict
from repro.cuba import quick_check
from repro.models import fig1_cpds, fig2_cpds


class TestQuickCheck:
    def test_trivial_property_proved_instantly(self):
        result = quick_check(fig1_cpds(), AlwaysSafe())
        assert result.verdict is Verdict.SAFE
        assert result.stats["Z"] == 8  # Ex. 13

    def test_unreachable_shared_state_proved(self):
        # Z for Fig. 1 never contains a shared state outside {0,1,2,3}.
        result = quick_check(fig1_cpds(), SharedStateReachability({99}))
        assert result.verdict is Verdict.SAFE

    def test_never_answers_unsafe(self):
        # Shared 3 IS reachable, but quick check must only say UNKNOWN.
        result = quick_check(fig1_cpds(), SharedStateReachability({3}))
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats["abstract_witness"].shared == 3

    def test_spurious_witness_stays_unknown(self):
        # ⟨1|2,6⟩ ∈ Z is reachable, but Z also holds unreachable junk on
        # other programs; either way UNKNOWN is the only honest answer.
        result = quick_check(fig2_cpds(), SharedStateReachability({0}))
        assert result.verdict is Verdict.UNKNOWN

    def test_works_without_fcr(self):
        # Fig. 2 violates FCR; the quick check never explores, so it
        # still concludes for properties Z settles.
        result = quick_check(fig2_cpds(), SharedStateReachability({"nope"}))
        assert result.verdict is Verdict.SAFE
        assert result.bound == 0
