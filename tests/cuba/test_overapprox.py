"""Tests for Alg. 2 / Z — golden values from Fig. 3 and Ex. 13,
plus a property-based check of Lemma 12 (T(R) ⊆ Z)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpds import CPDS, VisibleState
from repro.cuba import build_abstraction, compute_z
from repro.errors import ContextExplosionError
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import EMPTY, PDS
from repro.reach import ExplicitReach


def vs(shared, *tops):
    return VisibleState(shared, tuple(tops))


class TestBuildAbstractionFig1:
    def test_thread1_matches_fig3(self):
        abstraction = build_abstraction(fig1_cpds().thread(0))
        assert abstraction.transitions == {
            (0, 1): frozenset({(1, 2)}),
            (3, 2): frozenset({(0, 1)}),
        }
        assert abstraction.emerging == frozenset()

    def test_thread2_matches_fig3(self):
        abstraction = build_abstraction(fig1_cpds().thread(1))
        assert abstraction.emerging == frozenset({6})
        assert abstraction.transitions == {
            (0, 4): frozenset({(0, EMPTY), (0, 6)}),  # f1/f2 of Fig. 3
            (1, 4): frozenset({(2, 5)}),              # f3
            (2, 5): frozenset({(3, 4)}),              # f4
        }

    def test_transition_count(self):
        abstraction = build_abstraction(fig1_cpds().thread(1))
        assert abstraction.n_transitions() == 4


class TestComputeZFig1:
    def test_z_matches_ex13(self):
        expected = {
            vs(0, 1, 4),
            vs(1, 2, 4),
            vs(2, 2, 5),
            vs(3, 2, 4),
            vs(0, 1, EMPTY),
            vs(1, 2, EMPTY),
            vs(0, 1, 6),
            vs(1, 2, 6),
        }
        assert compute_z(fig1_cpds()) == expected


class TestLemma12OnPaperModels:
    def test_fig1_visible_reach_inside_z(self):
        cpds = fig1_cpds()
        z = compute_z(cpds)
        engine = ExplicitReach(cpds, track_traces=False)
        engine.ensure_level(8)
        assert engine.visible_up_to() <= z

    def test_fig2_z_is_finite_superset_of_samples(self):
        # Fig. 2 has no FCR, but Z is still finite and must contain the
        # visible states of known reachable states (Ex. 8's witness).
        z = compute_z(fig2_cpds())
        assert vs("⊥", 2, 6) in z
        assert vs(1, 4, 9) in z  # projection of ⟨1|4,9⟩
        assert len(z) < 3 * 5 * 5  # bounded by Q × Σ≤1 × Σ≤1


class TestEmergingOnEmptyWrite:
    def test_pop_gets_emerging_expansion(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ())             # pop
        pds.rule(1, "b", 1, ("c", "d"))     # push: d emerges
        abstraction = build_abstraction(pds)
        assert abstraction.transitions[(0, "a")] == frozenset(
            {(1, EMPTY), (1, "d")}
        )

    def test_no_pushes_no_expansion(self):
        pds = PDS(initial_shared=0)
        pds.rule(0, "a", 1, ())
        abstraction = build_abstraction(pds)
        assert abstraction.transitions[(0, "a")] == frozenset({(1, EMPTY)})


# ---------------------------------------------------------------------------
# Lemma 12 as a property: T(Rk) ⊆ Z on random CPDS.
# ---------------------------------------------------------------------------

@st.composite
def random_cpds(draw):
    threads = []
    stacks = []
    for _t in range(draw(st.integers(min_value=1, max_value=2))):
        pds = PDS(initial_shared=0, shared_states={0, 1}, alphabet={"a", "b"})
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            read = draw(st.sampled_from([None, "a", "b"]))
            if read is None:
                write = draw(st.sampled_from([(), ("a",), ("b",)]))
            else:
                write = draw(
                    st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("b", "a")])
                )
            pds.rule(
                draw(st.sampled_from([0, 1])),
                read,
                draw(st.sampled_from([0, 1])),
                write,
            )
        threads.append(pds)
        stacks.append(tuple(draw(st.lists(st.sampled_from(["a", "b"]), max_size=1))))
    return CPDS(threads, initial_stacks=stacks)


@settings(max_examples=60, deadline=None)
@given(random_cpds())
def test_lemma12_on_random_cpds(cpds):
    z = compute_z(cpds)
    engine = ExplicitReach(cpds, max_states_per_context=3000, track_traces=False)
    try:
        engine.ensure_level(4)
    except ContextExplosionError:
        pass  # partial levels still satisfy the lemma
    assert engine.visible_up_to() <= z


class TestAbstractSequence:
    """The stratified abstraction (A_k): T(Rk) ⊆ A_k, limit = Z."""

    def test_limit_is_z(self):
        from repro.cuba import abstract_visible_levels

        cpds = fig1_cpds()
        levels = abstract_visible_levels(cpds)
        assert levels[-1] == compute_z(cpds)

    def test_monotone(self):
        from repro.cuba import abstract_visible_levels

        levels = abstract_visible_levels(fig1_cpds())
        for earlier, later in zip(levels, levels[1:]):
            assert earlier < later  # cumulative and strictly growing

    def test_dominates_concrete_levels_on_fig1(self):
        from repro.cuba import abstract_visible_levels

        cpds = fig1_cpds()
        levels = abstract_visible_levels(cpds)
        engine = ExplicitReach(cpds, track_traces=False)
        engine.ensure_level(6)
        for k in range(min(len(levels), 7)):
            assert engine.visible_up_to(k) <= levels[k], f"k={k}"

    def test_bug_lower_bound_tight_on_fig1(self):
        from repro.core import SharedStateReachability
        from repro.cuba import abstract_bug_lower_bound

        # Shared 3 is truly reachable at bound 2; the abstraction agrees.
        bound = abstract_bug_lower_bound(fig1_cpds(), SharedStateReachability({3}))
        assert bound == 2

    def test_bug_lower_bound_none_means_safe(self):
        from repro.core import SharedStateReachability
        from repro.cuba import abstract_bug_lower_bound

        assert abstract_bug_lower_bound(
            fig1_cpds(), SharedStateReachability({99})
        ) is None

    def test_lower_bound_sound_on_fig2(self):
        from repro.core import MutualExclusion
        from repro.cuba import abstract_bug_lower_bound
        from repro.models import fig2_cpds

        # ⟨1|4,9⟩ reachable at real bound 2; abstract bound must be ≤ 2.
        prop = MutualExclusion({0: {4}, 1: {9}})
        bound = abstract_bug_lower_bound(fig2_cpds(), prop)
        assert bound is not None and bound <= 2


@settings(max_examples=40, deadline=None)
@given(random_cpds())
def test_abstract_levels_dominate_concrete(cpds):
    from repro.cuba import abstract_visible_levels

    levels = abstract_visible_levels(cpds)
    engine = ExplicitReach(cpds, max_states_per_context=3000, track_traces=False)
    try:
        engine.ensure_level(3)
    except ContextExplosionError:
        return
    for k in range(4):
        abstract = levels[min(k, len(levels) - 1)]
        assert engine.visible_up_to(k) <= abstract, f"k={k}"
