"""Symbol interning: global order stability and dense tables."""

from repro.automata import intern
from repro.automata.intern import SymbolTable, order_of, sort_symbols
from repro.automata.ops import _sort_key


class TestGlobalOrder:
    def test_order_is_stable_across_calls(self):
        first = sort_symbols({"b", "a", "c"})
        second = sort_symbols(["c", "a", "b", "a"])
        assert first == second
        assert len(second) == 3  # deduplicated

    def test_batch_interning_matches_repr_fallback(self):
        """A batch of fresh symbols sorts exactly as the seed's
        (qualname, repr) key did — reproducible signatures."""
        fresh = [("probe", i) for i in (3, 1, 2)]
        assert sort_symbols(fresh) == sorted(fresh, key=_sort_key)

    def test_interned_order_wins_over_repr_order(self):
        """Once interned, first-seen order is authoritative even where
        repr order would disagree."""
        late = ("zz_probe", "late")
        early = ("zz_probe", "solo")
        order_of(early)  # interned first → sorts first from now on
        assert sort_symbols([late, early]) == [early, late]
        assert sorted([late, early], key=_sort_key) == [late, early]

    def test_mixed_types_sort_without_comparisons(self):
        # ints and strings are not mutually orderable; interned ids are.
        symbols = ["x", 3, ("t", 1), "y", 7]
        once = sort_symbols(symbols)
        assert sort_symbols(reversed(symbols)) == once

    def test_order_of_interns_on_demand(self):
        before = intern.interned_count()
        order_of(("intern-probe", before))
        assert intern.interned_count() == before + 1


class TestSymbolTable:
    def test_dense_ids_cover_alphabet(self):
        table = SymbolTable(["g", "e", "f"])
        assert sorted(table.index.values()) == [0, 1, 2]
        assert len(table) == 3
        for i, symbol in enumerate(table.symbols):
            assert table.id_of(symbol) == i

    def test_table_order_matches_global_sort(self):
        alphabet = {("tbl", 2), ("tbl", 0), ("tbl", 1)}
        table = SymbolTable(alphabet)
        assert list(table.symbols) == sort_symbols(alphabet)

    def test_membership_and_iteration(self):
        table = SymbolTable(["m", "n"])
        assert "m" in table and "q" not in table
        assert set(table) == {"m", "n"}


class TestPdsIntegration:
    def test_pds_symbol_table_cached_and_invalidated(self):
        from repro.pds.pds import PDS

        pds = PDS(0)
        pds.rule(0, "a", 0, ["a", "b"])
        table = pds.symbol_table()
        assert table is pds.symbol_table()  # cached
        assert set(table) == {"a", "b"}
        pds.declare_symbol("c")
        rebuilt = pds.symbol_table()
        assert rebuilt is not table
        assert "c" in rebuilt

    def test_trigger_index_serves_actions_for(self):
        from repro.pds.pds import PDS

        pds = PDS(0)
        action = pds.rule(0, "a", 1, [])
        index = pds.trigger_index()
        assert index[(0, "a")] == (action,)
        assert pds.actions_for(0, "a") == (action,)
        assert pds.actions_for(9, "a") == ()
        # Mutation invalidates the cached index.
        extra = pds.rule(0, "a", 0, ["a"])
        assert pds.actions_for(0, "a") == (action, extra)
