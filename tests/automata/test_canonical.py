"""Tests for canonical language signatures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import EPSILON, NFA, canonical_signature, determinize, language_equal

ALPHABET = ("a", "b")


def ends_in_b():
    nfa = NFA(initial=["q0"], accepting=["q1"])
    nfa.add_transition("q0", "a", "q0")
    nfa.add_transition("q0", "b", "q0")
    nfa.add_transition("q0", "b", "q1")
    return nfa


class TestCanonicalSignature:
    def test_signature_is_hashable(self):
        hash(canonical_signature(ends_in_b(), ALPHABET))

    def test_equal_languages_equal_signatures(self):
        nfa = ends_in_b()
        assert canonical_signature(nfa, ALPHABET) == canonical_signature(
            determinize(nfa), ALPHABET
        )

    def test_renamed_states_equal_signatures(self):
        renamed = NFA(initial=["X"], accepting=["Y"])
        renamed.add_transition("X", "a", "X")
        renamed.add_transition("X", "b", "X")
        renamed.add_transition("X", "b", "Y")
        assert canonical_signature(renamed, ALPHABET) == canonical_signature(
            ends_in_b(), ALPHABET
        )

    def test_different_languages_differ(self):
        other = NFA(initial=["q0"], accepting=["q0"])
        other.add_transition("q0", "a", "q0")
        assert canonical_signature(other, ALPHABET) != canonical_signature(
            ends_in_b(), ALPHABET
        )

    def test_empty_language_signature_stable(self):
        first = canonical_signature(NFA(initial=["i"]), ALPHABET)
        second = canonical_signature(NFA(initial=["zzz"]), ALPHABET)
        assert first == second


@st.composite
def random_nfa(draw):
    n_states = draw(st.integers(min_value=1, max_value=4))
    states = list(range(n_states))
    nfa = NFA(
        initial=draw(st.sets(st.sampled_from(states), min_size=1, max_size=2)),
        accepting=draw(st.sets(st.sampled_from(states), max_size=2)),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        nfa.add_transition(
            draw(st.sampled_from(states)),
            draw(st.sampled_from(["a", "b", EPSILON])),
            draw(st.sampled_from(states)),
        )
    return nfa


@settings(max_examples=40, deadline=None)
@given(random_nfa(), random_nfa())
def test_signature_equality_iff_language_equality(left, right):
    same_sig = canonical_signature(left, ALPHABET) == canonical_signature(right, ALPHABET)
    assert same_sig == language_equal(left, right, ALPHABET)
