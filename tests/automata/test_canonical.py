"""Tests for canonical language signatures and their memoization."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import EPSILON, NFA, canonical_signature, determinize, language_equal
from repro.automata.canonical import (
    canonical_cache_clear,
    canonical_cache_info,
    canonical_nfa,
)

ALPHABET = ("a", "b")


def ends_in_b():
    nfa = NFA(initial=["q0"], accepting=["q1"])
    nfa.add_transition("q0", "a", "q0")
    nfa.add_transition("q0", "b", "q0")
    nfa.add_transition("q0", "b", "q1")
    return nfa


class TestCanonicalSignature:
    def test_signature_is_hashable(self):
        hash(canonical_signature(ends_in_b(), ALPHABET))

    def test_equal_languages_equal_signatures(self):
        nfa = ends_in_b()
        assert canonical_signature(nfa, ALPHABET) == canonical_signature(
            determinize(nfa), ALPHABET
        )

    def test_renamed_states_equal_signatures(self):
        renamed = NFA(initial=["X"], accepting=["Y"])
        renamed.add_transition("X", "a", "X")
        renamed.add_transition("X", "b", "X")
        renamed.add_transition("X", "b", "Y")
        assert canonical_signature(renamed, ALPHABET) == canonical_signature(
            ends_in_b(), ALPHABET
        )

    def test_different_languages_differ(self):
        other = NFA(initial=["q0"], accepting=["q0"])
        other.add_transition("q0", "a", "q0")
        assert canonical_signature(other, ALPHABET) != canonical_signature(
            ends_in_b(), ALPHABET
        )

    def test_empty_language_signature_stable(self):
        first = canonical_signature(NFA(initial=["i"]), ALPHABET)
        second = canonical_signature(NFA(initial=["zzz"]), ALPHABET)
        assert first == second


@st.composite
def random_nfa(draw):
    n_states = draw(st.integers(min_value=1, max_value=4))
    states = list(range(n_states))
    nfa = NFA(
        initial=draw(st.sets(st.sampled_from(states), min_size=1, max_size=2)),
        accepting=draw(st.sets(st.sampled_from(states), max_size=2)),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        nfa.add_transition(
            draw(st.sampled_from(states)),
            draw(st.sampled_from(["a", "b", EPSILON])),
            draw(st.sampled_from(states)),
        )
    return nfa


@settings(max_examples=40, deadline=None)
@given(random_nfa(), random_nfa())
def test_signature_equality_iff_language_equality(left, right):
    same_sig = canonical_signature(left, ALPHABET) == canonical_signature(right, ALPHABET)
    assert same_sig == language_equal(left, right, ALPHABET)


# ---------------------------------------------------------------------------
# Memoization: structural-hash cache of canonical_nfa/canonical_signature.
# ---------------------------------------------------------------------------


def _words(max_len=4, alphabet=ALPHABET):
    for length in range(max_len + 1):
        yield from itertools.product(alphabet, repeat=length)


class TestCanonicalMemoization:
    def test_second_call_returns_identical_cached_objects(self):
        canonical_cache_clear()
        dfa1, sig1 = canonical_nfa(ends_in_b(), ALPHABET)
        dfa2, sig2 = canonical_nfa(ends_in_b(), ALPHABET)
        assert dfa1 is dfa2
        assert sig1 is sig2

    def test_cache_hit_counted(self):
        canonical_cache_clear()
        before = canonical_cache_info()["hits"]
        canonical_nfa(ends_in_b(), ALPHABET)
        canonical_nfa(ends_in_b(), ALPHABET)
        assert canonical_cache_info()["hits"] == before + 1

    def test_clear_forces_recomputation_with_equal_results(self):
        canonical_cache_clear()
        dfa1, sig1 = canonical_nfa(ends_in_b(), ALPHABET)
        canonical_cache_clear()
        dfa2, sig2 = canonical_nfa(ends_in_b(), ALPHABET)
        assert dfa1 is not dfa2  # fresh computation...
        assert sig1 == sig2      # ...same canonical result
        accepted1 = {w for w in _words() if dfa1.accepts(w)}
        accepted2 = {w for w in _words() if dfa2.accepts(w)}
        assert accepted1 == accepted2

    def test_mutating_input_changes_key_not_stale_result(self):
        canonical_cache_clear()
        nfa = ends_in_b()
        _, sig_before = canonical_nfa(nfa, ALPHABET)
        nfa.add_transition("q0", "a", "q1")  # language changes
        _, sig_after = canonical_nfa(nfa, ALPHABET)
        assert sig_before != sig_after

    def test_distinct_initial_views_cached_separately(self):
        canonical_cache_clear()
        nfa = ends_in_b()
        dfa_q0, sig_q0 = canonical_nfa(nfa, ALPHABET, initial=["q0"])
        dfa_q1, sig_q1 = canonical_nfa(nfa, ALPHABET, initial=["q1"])
        assert sig_q0 != sig_q1
        # Each view hits its own entry on repetition.
        assert canonical_nfa(nfa, ALPHABET, initial=["q0"])[0] is dfa_q0
        assert canonical_nfa(nfa, ALPHABET, initial=["q1"])[0] is dfa_q1


@settings(max_examples=40, deadline=None)
@given(random_nfa())
def test_cache_hits_never_change_the_accepted_language(nfa):
    """Property: the memoized result accepts exactly the input language
    (up to bounded word length), and a repeat call — a guaranteed cache
    hit — returns the identical object."""
    cold, sig = canonical_nfa(nfa, ALPHABET)
    warm, sig2 = canonical_nfa(nfa, ALPHABET)
    assert warm is cold and sig2 is sig
    for word in _words():
        assert cold.accepts(word) == nfa.accepts(word)


@settings(max_examples=30, deadline=None)
@given(random_nfa())
def test_signature_function_shares_cache_with_canonical_nfa(nfa):
    dfa, sig_pair = canonical_nfa(nfa, ALPHABET)
    assert canonical_signature(nfa, ALPHABET) is sig_pair
