"""Hopcroft (dense fused pipeline) vs Moore: identical canonical forms.

The dense pipeline of :mod:`repro.automata.dense` replaces the seed's
determinize → complete → Moore-refine → renumber chain on the hot path;
Moore survives in :func:`repro.automata.ops.minimize` as the oracle.
Both must produce the *same* canonical signature for every input — the
canonical minimal complete DFA is unique, so any divergence is a bug in
one of the minimizers.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import EPSILON, NFA
from repro.automata.canonical import backend, canonical_cache_clear, canonical_nfa
from repro.automata.dense import canonical_form, hopcroft, subset_tables
from repro.automata.intern import sort_symbols

ALPHABET = ("a", "b")


def _signature(nfa, alphabet, which):
    canonical_cache_clear()  # force a recomputation through `which`
    with backend(which):
        _dfa, sig = canonical_nfa(nfa, alphabet)
    return sig


@st.composite
def random_nfa(draw):
    n_states = draw(st.integers(min_value=1, max_value=5))
    states = list(range(n_states))
    nfa = NFA(
        initial=draw(st.sets(st.sampled_from(states), min_size=1, max_size=2)),
        accepting=draw(st.sets(st.sampled_from(states), max_size=3)),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        nfa.add_transition(
            draw(st.sampled_from(states)),
            draw(st.sampled_from(["a", "b", EPSILON])),
            draw(st.sampled_from(states)),
        )
    return nfa


@settings(max_examples=120, deadline=None)
@given(random_nfa())
def test_hopcroft_and_moore_identical_signatures(nfa):
    dense_sig = _signature(nfa, ALPHABET, "dense")
    moore_sig = _signature(nfa, ALPHABET, "moore")
    assert dense_sig == moore_sig
    assert dense_sig.key == moore_sig.key


@settings(max_examples=60, deadline=None)
@given(random_nfa(), st.sets(st.sampled_from([0, 1, 2, 3, 4]), min_size=1, max_size=2))
def test_backends_agree_on_entry_override(nfa, entry):
    entry = {s for s in entry if s in nfa.states} or set(nfa.initial)
    dense_sig = _signature(nfa, ALPHABET, "dense")  # warm the intern order
    del dense_sig
    canonical_cache_clear()
    with backend("dense"):
        _, dense_sig = canonical_nfa(nfa, ALPHABET, initial=entry)
    canonical_cache_clear()
    with backend("moore"):
        _, moore_sig = canonical_nfa(nfa, ALPHABET, initial=entry)
    assert dense_sig == moore_sig


@settings(max_examples=60, deadline=None)
@given(random_nfa())
def test_dense_canonical_dfa_accepts_same_language(nfa):
    canonical_cache_clear()
    with backend("dense"):
        dfa, _sig = canonical_nfa(nfa, ALPHABET)
    for length in range(5):
        for word in itertools.product(ALPHABET, repeat=length):
            assert dfa.accepts(word) == nfa.accepts(word), word


class TestDenseTables:
    def test_subset_tables_complete(self):
        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", "a", "f")
        symbols = sort_symbols(ALPHABET)
        rows, acc = subset_tables(nfa, symbols)
        n = len(rows)
        assert all(len(row) == len(symbols) for row in rows)
        assert all(0 <= target < n for row in rows for target in row)
        assert len(acc) == n and any(acc)

    def test_hopcroft_merges_equivalent_states(self):
        # Two states with identical futures collapse into one block.
        rows = [[1, 2], [1, 2], [2, 2]]
        accepting = [False, False, True]
        block_of = hopcroft(rows, accepting)
        assert block_of[0] == block_of[1]
        assert block_of[0] != block_of[2]

    def test_empty_language_single_state(self):
        bits, table = canonical_form(NFA(initial=["i"]), sort_symbols(ALPHABET))
        assert bits == (False,)
        assert table == ((0, 0),)

    def test_universal_language_single_state(self):
        nfa = NFA(initial=["i"], accepting=["i"])
        nfa.add_transition("i", "a", "i")
        nfa.add_transition("i", "b", "i")
        bits, table = canonical_form(nfa, sort_symbols(ALPHABET))
        assert bits == (True,)
        assert table == ((0, 0),)


class TestInverseEdgeCache:
    """Hopcroft preimage lists are cached per dense table (above the
    small-table bypass threshold): repeated canonicalizations of the
    same (or a same-table) automaton stop rebuilding them, visible
    through the METER rebuild counters."""

    def _nfa(self):
        """A chain automaton whose complete DFA clears the bypass
        threshold (> PRE_CACHE_MIN_CELLS cells)."""
        from repro.automata.dense import PRE_CACHE_MIN_CELLS

        length = PRE_CACHE_MIN_CELLS // len(ALPHABET) + 2
        nfa = NFA(initial=[0], accepting=[length])
        for i in range(length):
            nfa.add_transition(i, "a", i + 1)
            nfa.add_transition(i, "b", i)
        return nfa

    def test_rebuilds_drop_on_repeated_canonicalization(self):
        from repro.automata import dense
        from repro.util.meter import scoped

        nfa = self._nfa()
        dense.pre_cache_clear()
        canonical_cache_clear()
        with backend("dense"), scoped() as first:
            canonical_nfa(nfa, ALPHABET)
        assert first.get("canonical.hopcroft_pre_builds", 0) == 1
        assert first.get("canonical.hopcroft_pre_hits", 0) == 0
        assert first.get("canonical.hopcroft_incremental_misses", 0) == 1
        # A second canonicalization (structural memo cleared, so the
        # dense pipeline runs again) exact-hits the incremental
        # partition cache — no refinement, no inverse lists at all.
        canonical_cache_clear()
        with backend("dense"), scoped() as second:
            canonical_nfa(nfa, ALPHABET)
        assert second.get("canonical.hopcroft_pre_builds", 0) == 0
        assert second.get("canonical.hopcroft_pre_hits", 0) == 0
        assert second.get("canonical.hopcroft_incremental_hits", 0) == 1
        assert second.get("canonical.hopcroft_incremental_resplits", 0) == 0

    def test_small_tables_bypass_the_cache(self):
        from repro.automata import dense
        from repro.util.meter import scoped

        dense.pre_cache_clear()
        rows = [[1, 2], [1, 2], [2, 2]]  # 6 cells: under the threshold
        with scoped() as work:
            hopcroft(rows, [False, False, True])
            hopcroft(rows, [False, False, True])
        assert work.get("canonical.hopcroft_pre_builds", 0) == 0
        assert work.get("canonical.hopcroft_pre_hits", 0) == 0
        assert len(dense._pre_cache) == 0

    def test_cached_lists_produce_identical_partition(self):
        from repro.automata import dense

        size = dense.PRE_CACHE_MIN_CELLS + 2
        rows = [[(q + 1) % size] for q in range(size)]  # one-symbol cycle
        accepting = [q == 0 for q in range(size)]
        dense.pre_cache_clear()
        cold = hopcroft(rows, accepting)
        assert len(dense._pre_cache) == 1
        warm = hopcroft(rows, accepting)  # served from the cache
        assert cold == warm

    def test_cache_is_bounded(self):
        from repro.automata import dense

        dense.pre_cache_clear()
        width = dense.PRE_CACHE_MIN_CELLS + 1
        for i in range(dense.PRE_CACHE_SIZE + 10):
            hopcroft([[0] * (width + i)], [True])  # distinct per width
        assert len(dense._pre_cache) <= dense.PRE_CACHE_SIZE


class TestUsefulEdges:
    def test_dead_sink_edges_dropped(self):
        from repro.automata.canonical import CanonicalNFA

        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", "a", "f")
        canonical_cache_clear()
        dfa, _sig = canonical_nfa(nfa, ALPHABET)
        assert isinstance(dfa, CanonicalNFA)
        useful = dfa.useful_edges()
        assert useful is dfa.useful_edges()  # cached
        # The complete DFA has a dead sink; no useful edge touches it.
        coreachable = dfa.coreachable_states()
        assert len(coreachable) < len(dfa)
        for src, _label, dst in useful:
            assert src in coreachable and dst in coreachable
        # The useful part still carries the accepting path.
        assert any(dst in dfa.accepting for _s, _l, dst in useful)
