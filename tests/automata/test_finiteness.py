"""Tests for language finiteness / loop analysis (drives the FCR check)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import EPSILON, NFA, enumerate_words, has_graph_cycle, language_is_finite


def chain(words_accepting=True):
    nfa = NFA(initial=["0"], accepting=["2"])
    nfa.add_transition("0", "a", "1")
    nfa.add_transition("1", "b", "2")
    return nfa


class TestLanguageIsFinite:
    def test_finite_chain(self):
        assert language_is_finite(chain())

    def test_infinite_self_loop(self):
        nfa = chain()
        nfa.add_transition("1", "a", "1")
        assert not language_is_finite(nfa)

    def test_infinite_two_state_cycle(self):
        nfa = chain()
        nfa.add_transition("1", "x", "0")
        assert not language_is_finite(nfa)

    def test_useless_cycle_is_ignored(self):
        nfa = chain()
        # Cycle reachable but not co-reachable to accepting.
        nfa.add_transition("0", "z", "junk")
        nfa.add_transition("junk", "z", "junk")
        assert language_is_finite(nfa)

    def test_unreachable_cycle_is_ignored(self):
        nfa = chain()
        nfa.add_transition("ghost", "z", "ghost")
        nfa.add_transition("ghost", "a", "2")
        assert language_is_finite(nfa)

    def test_epsilon_only_cycle_is_finite(self):
        nfa = chain()
        # ε-only cycle between "1" and a helper: pumps nothing.
        nfa.add_transition("1", EPSILON, "m")
        nfa.add_transition("m", EPSILON, "1")
        assert language_is_finite(nfa)

    def test_empty_language_is_finite(self):
        assert language_is_finite(NFA(initial=["i"]))

    def test_epsilon_cycle_with_real_edge_inside_is_infinite(self):
        nfa = chain()
        nfa.add_transition("1", EPSILON, "m")
        nfa.add_transition("m", "c", "1")
        assert not language_is_finite(nfa)


class TestHasGraphCycle:
    def test_acyclic(self):
        assert not has_graph_cycle(chain())

    def test_self_loop(self):
        nfa = chain()
        nfa.add_transition("1", "a", "1")
        assert has_graph_cycle(nfa)

    def test_epsilon_self_loop_counts_as_graph_cycle(self):
        nfa = chain()
        nfa.add_transition("1", EPSILON, "1")
        assert has_graph_cycle(nfa)

    def test_useless_cycle_ignored_by_default(self):
        nfa = chain()
        nfa.add_transition("junk", "z", "junk")
        assert not has_graph_cycle(nfa)
        assert has_graph_cycle(nfa, useful_only=False)


class TestEnumerateWords:
    def test_enumerates_exactly(self):
        nfa = NFA(initial=["0"], accepting=["0"])
        nfa.add_transition("0", "a", "0")
        words = set(enumerate_words(nfa, 3))
        assert words == {(), ("a",), ("a", "a"), ("a", "a", "a")}

    def test_finite_language_fully_listed(self):
        words = set(enumerate_words(chain(), 5))
        assert words == {("a", "b")}


@st.composite
def random_nfa(draw):
    n_states = draw(st.integers(min_value=1, max_value=5))
    states = list(range(n_states))
    nfa = NFA(
        initial=draw(st.sets(st.sampled_from(states), min_size=1, max_size=2)),
        accepting=draw(st.sets(st.sampled_from(states), max_size=3)),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        nfa.add_transition(
            draw(st.sampled_from(states)),
            draw(st.sampled_from(["a", "b", EPSILON])),
            draw(st.sampled_from(states)),
        )
    return nfa


@settings(max_examples=80, deadline=None)
@given(random_nfa())
def test_finite_verdict_consistent_with_enumeration(nfa):
    """If declared finite, the word count must saturate well below the
    pumping threshold; if infinite, a longer word must keep appearing."""
    n = len(nfa.states)
    short = set(enumerate_words(nfa, n))
    longer = set(enumerate_words(nfa, 2 * n + 2))
    if language_is_finite(nfa):
        assert short == longer
    else:
        assert longer - short or any(len(w) > n for w in longer)
