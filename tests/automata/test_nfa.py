"""Unit tests for the core NFA class."""

import pickle

import pytest

from repro.automata import EPSILON, NFA


def build_ab_star():
    """Automaton for (ab)* over {a, b}."""
    nfa = NFA(initial=["s0"], accepting=["s0"])
    nfa.add_transition("s0", "a", "s1")
    nfa.add_transition("s1", "b", "s0")
    return nfa


class TestEpsilonSentinel:
    def test_singleton_identity(self):
        first = type(EPSILON)()
        assert first is EPSILON

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(EPSILON)) is EPSILON

    def test_repr(self):
        assert repr(EPSILON) == "ε"


class TestConstruction:
    def test_initial_and_accepting_are_states(self):
        nfa = NFA(initial=["i"], accepting=["f"])
        assert "i" in nfa
        assert "f" in nfa

    def test_add_transition_adds_states(self):
        nfa = NFA()
        nfa.add_transition("x", "a", "y")
        assert "x" in nfa and "y" in nfa

    def test_add_transition_reports_novelty(self):
        nfa = NFA()
        assert nfa.add_transition("x", "a", "y") is True
        assert nfa.add_transition("x", "a", "y") is False

    def test_copy_is_independent(self):
        nfa = build_ab_star()
        clone = nfa.copy()
        clone.add_transition("s0", "c", "s2")
        assert not nfa.has_transition("s0", "c", "s2")
        assert clone.has_transition("s0", "c", "s2")

    def test_len_counts_states(self):
        assert len(build_ab_star()) == 2

    def test_num_transitions(self):
        assert build_ab_star().num_transitions() == 2


class TestQueries:
    def test_accepts_empty_word(self):
        assert build_ab_star().accepts([])

    def test_accepts_ab(self):
        assert build_ab_star().accepts(["a", "b"])

    def test_rejects_a(self):
        assert not build_ab_star().accepts(["a"])

    def test_rejects_ba(self):
        assert not build_ab_star().accepts(["b", "a"])

    def test_accepts_long_word(self):
        assert build_ab_star().accepts(["a", "b"] * 10)

    def test_accepts_from_other_state(self):
        nfa = build_ab_star()
        assert nfa.accepts_from("s1", ["b"])
        assert not nfa.accepts_from("s1", ["a", "b"])

    def test_step_rejects_epsilon(self):
        with pytest.raises(ValueError):
            build_ab_star().step(["s0"], EPSILON)

    def test_alphabet_excludes_epsilon(self):
        nfa = build_ab_star()
        nfa.add_transition("s0", EPSILON, "s1")
        assert nfa.alphabet() == frozenset({"a", "b"})


class TestEpsilonClosure:
    def test_closure_includes_self(self):
        nfa = NFA(initial=["x"])
        assert nfa.epsilon_closure(["x"]) == frozenset({"x"})

    def test_closure_follows_chains(self):
        nfa = NFA()
        nfa.add_transition("a", EPSILON, "b")
        nfa.add_transition("b", EPSILON, "c")
        assert nfa.epsilon_closure(["a"]) == frozenset({"a", "b", "c"})

    def test_closure_handles_cycles(self):
        nfa = NFA()
        nfa.add_transition("a", EPSILON, "b")
        nfa.add_transition("b", EPSILON, "a")
        assert nfa.epsilon_closure(["a"]) == frozenset({"a", "b"})

    def test_acceptance_through_epsilon(self):
        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", "a", "m")
        nfa.add_transition("m", EPSILON, "f")
        assert nfa.accepts(["a"])

    def test_reads_uses_closure_on_both_sides(self):
        nfa = NFA()
        nfa.add_transition("p", EPSILON, "q")
        nfa.add_transition("q", "a", "r")
        nfa.add_transition("r", EPSILON, "s")
        assert nfa.reads("p", "a") == frozenset({"r", "s"})


class TestGraphUtilities:
    def test_reachable_states(self):
        nfa = NFA(initial=["a"])
        nfa.add_transition("a", "x", "b")
        nfa.add_transition("c", "x", "d")
        assert nfa.reachable_states() == frozenset({"a", "b"})

    def test_coreachable_states(self):
        nfa = NFA(accepting=["f"])
        nfa.add_transition("a", "x", "f")
        nfa.add_transition("b", "x", "c")
        assert nfa.coreachable_states() == frozenset({"a", "f"})

    def test_trim_keeps_only_useful(self):
        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", "a", "f")
        nfa.add_transition("i", "a", "junk")
        nfa.add_transition("other", "b", "f")
        trimmed = nfa.trim()
        assert trimmed.states == frozenset({"i", "f"})
        assert trimmed.accepts(["a"])

    def test_trim_preserves_language_sampled(self):
        nfa = build_ab_star()
        nfa.add_transition("s0", "z", "limbo")
        trimmed = nfa.trim()
        for word in ([], ["a", "b"], ["a"], ["z"]):
            assert trimmed.accepts(word) == nfa.accepts(word)
