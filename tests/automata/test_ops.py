"""Unit and property tests for automata constructions."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    EPSILON,
    NFA,
    complement,
    determinize,
    intersect,
    is_empty,
    language_contains,
    language_equal,
    minimize,
    union,
)

ALPHABET = ("a", "b")


def words_up_to(length, alphabet=ALPHABET):
    for n in range(length + 1):
        yield from itertools.product(alphabet, repeat=n)


def language_sample(nfa, length=5, alphabet=ALPHABET):
    return {w for w in words_up_to(length, alphabet) if nfa.accepts(w)}


def ends_in_b():
    nfa = NFA(initial=["q0"], accepting=["q1"])
    nfa.add_transition("q0", "a", "q0")
    nfa.add_transition("q0", "b", "q0")
    nfa.add_transition("q0", "b", "q1")
    return nfa


def even_as():
    nfa = NFA(initial=["e"], accepting=["e"])
    nfa.add_transition("e", "a", "o")
    nfa.add_transition("o", "a", "e")
    nfa.add_transition("e", "b", "e")
    nfa.add_transition("o", "b", "o")
    return nfa


class TestDeterminize:
    def test_preserves_language(self):
        nfa = ends_in_b()
        dfa = determinize(nfa)
        assert language_sample(dfa) == language_sample(nfa)

    def test_result_is_deterministic(self):
        dfa = determinize(ends_in_b())
        for state in dfa.states:
            for symbol in ALPHABET:
                assert len(dfa.targets(state, symbol)) <= 1
            assert not dfa.targets(state, EPSILON)

    def test_single_initial_state(self):
        assert len(determinize(ends_in_b()).initial) == 1

    def test_epsilon_transitions_eliminated(self):
        nfa = NFA(initial=["i"], accepting=["f"])
        nfa.add_transition("i", EPSILON, "m")
        nfa.add_transition("m", "a", "f")
        dfa = determinize(nfa)
        assert dfa.accepts(["a"])
        assert not dfa.accepts([])


class TestComplement:
    def test_flips_membership(self):
        nfa = ends_in_b()
        comp = complement(nfa, ALPHABET)
        for word in words_up_to(5):
            assert comp.accepts(word) != nfa.accepts(word)

    def test_complement_of_empty_is_universal(self):
        comp = complement(NFA(initial=["i"]), ALPHABET)
        assert all(comp.accepts(w) for w in words_up_to(4))


class TestIntersect:
    def test_intersection_semantics(self):
        prod = intersect(ends_in_b(), even_as())
        expected = language_sample(ends_in_b()) & language_sample(even_as())
        assert language_sample(prod) == expected

    def test_epsilon_in_either_component(self):
        left = NFA(initial=["i"], accepting=["f"])
        left.add_transition("i", EPSILON, "m")
        left.add_transition("m", "a", "f")
        right = NFA(initial=["x"], accepting=["y"])
        right.add_transition("x", "a", "y")
        prod = intersect(left, right)
        assert prod.accepts(["a"])
        assert not prod.accepts([])

    def test_disjoint_languages_empty(self):
        only_a = NFA(initial=["i"], accepting=["f"])
        only_a.add_transition("i", "a", "f")
        only_b = NFA(initial=["i"], accepting=["f"])
        only_b.add_transition("i", "b", "f")
        assert is_empty(intersect(only_a, only_b))


class TestUnion:
    def test_union_semantics(self):
        combined = union(ends_in_b(), even_as())
        expected = language_sample(ends_in_b()) | language_sample(even_as())
        assert language_sample(combined) == expected


class TestEmptinessAndContainment:
    def test_empty_automaton(self):
        assert is_empty(NFA(initial=["i"]))

    def test_nonempty(self):
        assert not is_empty(ends_in_b())

    def test_containment_holds(self):
        ends = ends_in_b()
        abb = NFA(initial=["0"], accepting=["3"])
        abb.add_transition("0", "a", "1")
        abb.add_transition("1", "b", "2")
        abb.add_transition("2", "b", "3")
        assert language_contains(ends, abb, ALPHABET)
        assert not language_contains(abb, ends, ALPHABET)

    def test_equality(self):
        assert language_equal(ends_in_b(), determinize(ends_in_b()), ALPHABET)
        assert not language_equal(ends_in_b(), even_as(), ALPHABET)


class TestMinimize:
    def test_preserves_language(self):
        minimal = minimize(ends_in_b(), ALPHABET)
        assert language_sample(minimal) == language_sample(ends_in_b())

    def test_reaches_known_minimum(self):
        # "ends in b" needs exactly 2 states as a complete DFA.
        assert len(minimize(ends_in_b(), ALPHABET)) == 2

    def test_minimal_dfa_of_empty_language(self):
        minimal = minimize(NFA(initial=["i"]), ALPHABET)
        assert len(minimal) == 1
        assert not minimal.accepting


# ---------------------------------------------------------------------------
# Property-based tests on random NFAs
# ---------------------------------------------------------------------------

@st.composite
def random_nfa(draw):
    n_states = draw(st.integers(min_value=1, max_value=5))
    states = list(range(n_states))
    nfa = NFA(
        initial=draw(st.sets(st.sampled_from(states), min_size=1, max_size=2)),
        accepting=draw(st.sets(st.sampled_from(states), max_size=3)),
    )
    n_edges = draw(st.integers(min_value=0, max_value=12))
    for _ in range(n_edges):
        src = draw(st.sampled_from(states))
        dst = draw(st.sampled_from(states))
        label = draw(st.sampled_from(["a", "b", EPSILON]))
        nfa.add_transition(src, label, dst)
    return nfa


@settings(max_examples=60, deadline=None)
@given(random_nfa())
def test_determinize_preserves_language(nfa):
    dfa = determinize(nfa, ALPHABET)
    for word in words_up_to(4):
        assert dfa.accepts(word) == nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(random_nfa())
def test_minimize_preserves_language(nfa):
    minimal = minimize(nfa, ALPHABET)
    for word in words_up_to(4):
        assert minimal.accepts(word) == nfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(random_nfa())
def test_complement_is_involutive_on_language(nfa):
    double = complement(complement(nfa, ALPHABET), ALPHABET)
    for word in words_up_to(4):
        assert double.accepts(word) == nfa.accepts(word)


@settings(max_examples=40, deadline=None)
@given(random_nfa(), random_nfa())
def test_intersect_matches_pointwise_and(left, right):
    prod = intersect(left, right)
    for word in words_up_to(3):
        assert prod.accepts(word) == (left.accepts(word) and right.accepts(word))


@settings(max_examples=40, deadline=None)
@given(random_nfa(), random_nfa())
def test_union_matches_pointwise_or(left, right):
    combined = union(left, right)
    for word in words_up_to(3):
        assert combined.accepts(word) == (left.accepts(word) or right.accepts(word))


@settings(max_examples=40, deadline=None)
@given(random_nfa())
def test_language_equal_reflexive(nfa):
    assert language_equal(nfa, nfa.copy(), ALPHABET)
