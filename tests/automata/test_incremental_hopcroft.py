"""Incremental Hopcroft ≡ full Hopcroft ≡ Moore (PR 8).

:func:`repro.automata.dense.hopcroft_incremental` seeds partition
refinement from a cached predecessor's final partition when a new dense
table differs by a bounded edit set.  Seeding can only over-split
(refinement never merges), so the implementation quotients and
re-minimizes — these tests pin that the composed result is *always* the
minimal partition, regardless of cache state:

* randomized property tests compare the partition against full
  :func:`~repro.automata.dense.hopcroft` on the same table, with the
  cache warmed by edited predecessors (the seeded path) and cold (the
  from-scratch path);
* the canonical pipeline differential (dense vs Moore oracle) already
  runs in ``test_hopcroft.py``; here the incremental layer is driven
  directly with adversarial edits — acceptance flips, redirected edges,
  merges that make previously distinct states equivalent (the case a
  naive seed-without-quotient implementation gets wrong);
* METER counters: ``canonical.hopcroft_incremental_hits``/``_misses``
  partition the calls, ``_resplits`` counts seeded splits, and the
  ``canonical.hopcroft_pre_bypass`` satellite makes small-table calls
  visible to the BENCH hit-rate denominators.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import dense
from repro.automata.dense import hopcroft, hopcroft_incremental
from repro.util.meter import scoped

#: Table sizes comfortably above PRE_CACHE_MIN_CELLS so the incremental
#: layer engages (n * m > 64).
N_STATES = 40
N_SYMBOLS = 2


def _partition_key(block_of):
    """Canonical renumbering of a partition (first-occurrence order) so
    two partitions compare equal iff they group states identically."""
    seen = {}
    return tuple(seen.setdefault(b, len(seen)) for b in block_of)


def _random_table(rng, n=N_STATES, m=N_SYMBOLS):
    rows = [[rng.randrange(n) for _ in range(m)] for _ in range(n)]
    acc = [rng.random() < 0.3 for _ in range(n)]
    return rows, acc


def _edit(rng, rows, acc, n_edits):
    """Perturb a few states: redirect edges and/or flip acceptance."""
    rows = [list(r) for r in rows]
    acc = list(acc)
    n = len(rows)
    for _ in range(n_edits):
        q = rng.randrange(n)
        if rng.random() < 0.5:
            rows[q][rng.randrange(len(rows[q]))] = rng.randrange(n)
        else:
            acc[q] = not acc[q]
    return rows, acc


@st.composite
def table_and_edits(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    n_edits = draw(st.integers(min_value=1, max_value=8))
    return seed, n_edits


class TestIncrementalEqualsFull:
    @settings(max_examples=80, deadline=None)
    @given(table_and_edits())
    def test_seeded_path_is_minimal(self, params):
        """Warm the cache with a table, then minimize a bounded edit of
        it: the seeded partition must equal full Hopcroft's."""
        seed, n_edits = params
        rng = random.Random(seed)
        rows, acc = _random_table(rng)
        dense.pre_cache_clear()
        hopcroft_incremental(rows, acc)  # warm the predecessor cache
        edited_rows, edited_acc = _edit(rng, rows, acc, n_edits)
        incremental = hopcroft_incremental(edited_rows, edited_acc)
        full = hopcroft(edited_rows, edited_acc)
        assert _partition_key(incremental) == _partition_key(full)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_cold_path_is_minimal(self, seed):
        rng = random.Random(seed)
        rows, acc = _random_table(rng)
        dense.pre_cache_clear()
        incremental = hopcroft_incremental(rows, acc)
        full = hopcroft(rows, acc)
        assert _partition_key(incremental) == _partition_key(full)

    def test_merge_edit_does_not_leak_an_overfine_seed(self):
        """The adversarial case for seed-only reuse: an edit that makes
        two previously *distinct* states equivalent.  The predecessor's
        partition separates them; refinement cannot merge them back, so
        only the quotient pass restores minimality."""
        n, m = N_STATES, N_SYMBOLS
        # Two chains of equal length ending in distinct sinks — states
        # i and i + n//2 are inequivalent solely because the sinks'
        # acceptance differs.
        half = n // 2
        rows = []
        acc = []
        for q in range(n):
            base = half if q >= half else 0
            nxt = base + min(q % half + 1, half - 1)
            rows.append([nxt] * m)
            acc.append(q == half - 1)  # only chain 1's sink accepts
        dense.pre_cache_clear()
        hopcroft_incremental(rows, acc)
        # Flip the second sink to accepting too: the chains collapse
        # pairwise and the minimal DFA halves.
        edited_acc = list(acc)
        edited_acc[n - 1] = True
        incremental = hopcroft_incremental(rows, edited_acc)
        full = hopcroft(rows, edited_acc)
        assert _partition_key(incremental) == _partition_key(full)
        # Sanity: the edit genuinely merged blocks, so a seed-only
        # implementation (no quotient) would have returned too many.
        assert len(set(incremental)) == len(set(full))
        assert len(set(full)) < len(set(hopcroft(rows, acc)))

    def test_exact_repeat_returns_the_cached_partition(self):
        rng = random.Random(7)
        rows, acc = _random_table(rng)
        dense.pre_cache_clear()
        first = hopcroft_incremental(rows, acc)
        with scoped() as work:
            second = hopcroft_incremental([list(r) for r in rows], list(acc))
        assert second == first
        assert work.get("canonical.hopcroft_incremental_hits", 0) == 1
        assert work.get("canonical.hopcroft_incremental_resplits", 0) == 0
        assert work.get("canonical.hopcroft_pre_builds", 0) == 0


class TestMeterCounters:
    def test_hits_misses_and_resplits(self):
        rng = random.Random(21)
        rows, acc = _random_table(rng)
        dense.pre_cache_clear()
        with scoped() as cold:
            hopcroft_incremental(rows, acc)
        assert cold.get("canonical.hopcroft_incremental_misses", 0) == 1
        assert cold.get("canonical.hopcroft_incremental_hits", 0) == 0
        edited_rows, edited_acc = _edit(rng, rows, acc, 3)
        with scoped() as warm:
            hopcroft_incremental(edited_rows, edited_acc)
        assert warm.get("canonical.hopcroft_incremental_hits", 0) == 1
        assert warm.get("canonical.hopcroft_incremental_misses", 0) == 0

    def test_distant_tables_miss(self):
        """A table nothing like the cached ones minimizes from scratch
        (the edit bound caps the seed search)."""
        dense.pre_cache_clear()
        rng = random.Random(3)
        rows, acc = _random_table(rng)
        hopcroft_incremental(rows, acc)
        other_rows, other_acc = _random_table(random.Random(4))
        with scoped() as work:
            hopcroft_incremental(other_rows, other_acc)
        assert work.get("canonical.hopcroft_incremental_misses", 0) == 1

    def test_small_tables_bypass_the_incremental_layer(self):
        """Below PRE_CACHE_MIN_CELLS the plain path runs — counted by
        the ``hopcroft_pre_bypass`` satellite counter so BENCH hit-rate
        denominators stay exact."""
        dense.pre_cache_clear()
        rows = [[1, 2], [1, 2], [2, 2]]  # 6 cells: under the threshold
        with scoped() as work:
            hopcroft_incremental(rows, [False, False, True])
            hopcroft_incremental(rows, [False, False, True])
        assert work.get("canonical.hopcroft_pre_bypass", 0) == 2
        assert work.get("canonical.hopcroft_incremental_hits", 0) == 0
        assert work.get("canonical.hopcroft_incremental_misses", 0) == 0
        assert len(dense._inc_cache) == 0

    def test_incremental_cache_is_bounded(self):
        dense.pre_cache_clear()
        rng = random.Random(11)
        for _ in range(dense.INC_CACHE_SIZE + 10):
            rows, acc = _random_table(rng, n=35)
            hopcroft_incremental(rows, acc)
        assert len(dense._inc_cache) <= dense.INC_CACHE_SIZE

    def test_pre_cache_clear_drops_the_incremental_cache(self):
        rng = random.Random(13)
        rows, acc = _random_table(rng)
        hopcroft_incremental(rows, acc)
        assert len(dense._inc_cache) >= 1
        dense.pre_cache_clear()
        assert len(dense._inc_cache) == 0
