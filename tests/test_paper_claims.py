"""Consolidated tests for the paper's formal claims.

Each test class corresponds to one lemma/property/theorem of the paper
and validates it either on the paper's own examples or as a
property-based statement on random systems.  (The figure-level golden
tests live next to their modules; this file covers the *claims*.)
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import terminology
from repro.cpds import CPDS
from repro.cuba import check_fcr, compute_z
from repro.errors import ContextExplosionError
from repro.models import fig1_cpds, fig2_cpds
from repro.pds import PDS, PDSState, post_star_explicit
from repro.pds.saturation import shallow_configs_psa
from repro.reach import ExplicitReach, SymbolicReach, validate_trace

SYMBOLS = ("a", "b")
SHARED = (0, 1)


@st.composite
def random_cpds(draw, max_threads=2, max_rules=6):
    threads = []
    stacks = []
    for _t in range(draw(st.integers(min_value=1, max_value=max_threads))):
        pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
        for _ in range(draw(st.integers(min_value=1, max_value=max_rules))):
            read = draw(st.sampled_from([None, "a", "b"]))
            if read is None:
                write = draw(st.sampled_from([(), ("a",), ("b",)]))
            else:
                write = draw(
                    st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("b", "a")])
                )
            pds.rule(
                draw(st.sampled_from(SHARED)), read,
                draw(st.sampled_from(SHARED)), write,
            )
        threads.append(pds)
        stacks.append(tuple(draw(st.lists(st.sampled_from(SYMBOLS), max_size=1))))
    return CPDS(threads, initial_stacks=stacks)


class TestDefinition1Monotonicity:
    """Observation sequences are monotone by construction (Def. 1)."""

    @settings(max_examples=40, deadline=None)
    @given(random_cpds())
    def test_visible_sequence_monotone(self, cpds):
        engine = ExplicitReach(cpds, max_states_per_context=2000, track_traces=False)
        try:
            engine.ensure_level(4)
        except ContextExplosionError:
            assume(False)
        prefix = [engine.visible_up_to(k) for k in range(5)]
        assert terminology.is_monotone(prefix)

    @settings(max_examples=25, deadline=None)
    @given(random_cpds())
    def test_symbolic_visible_sequence_monotone(self, cpds):
        engine = SymbolicReach(cpds)
        engine.ensure_level(3)
        prefix = [engine.visible_up_to(k) for k in range(4)]
        assert terminology.is_monotone(prefix)


class TestProperty3FiniteDomainConverges:
    """An OS over a finite domain converges (Prop. 3): T(Rk) always
    stabilizes because its domain Q×Σ≤1×...×Σ≤1 is finite."""

    @settings(max_examples=25, deadline=None)
    @given(random_cpds(max_threads=1, max_rules=4))
    def test_visible_sequence_stabilizes(self, cpds):
        engine = SymbolicReach(cpds)
        domain_size = len(cpds.shared_states) * (len(cpds.alphabet(0)) + 1)
        engine.ensure_level(domain_size + 1)
        # After |domain| growth steps there must be a plateau somewhere.
        prefix = [engine.visible_up_to(k) for k in range(domain_size + 2)]
        assert any(
            prefix[k] == prefix[k + 1] for k in range(len(prefix) - 1)
        )


class TestLemma7StutterFreeness:
    """(Rk) is stutter-free: one plateau means collapse (Lemma 7)."""

    @settings(max_examples=40, deadline=None)
    @given(random_cpds())
    def test_plateau_implies_collapse(self, cpds):
        engine = ExplicitReach(cpds, max_states_per_context=2000, track_traces=False)
        try:
            engine.ensure_level(6)
        except ContextExplosionError:
            assume(False)
        sizes = [len(engine.states_up_to(k)) for k in range(7)]
        for k in range(1, 6):
            if sizes[k] == sizes[k - 1]:
                assert sizes[k:] == [sizes[k]] * (len(sizes) - k), sizes
                break

    def test_fig1_never_plateaus(self):
        # Ex. 5: (Rk) diverges on Fig. 1.
        engine = ExplicitReach(fig1_cpds(), track_traces=False)
        engine.ensure_level(8)
        for k in range(1, 9):
            assert not engine.plateaued_at(k)


class TestLemma12ZOverapproximates:
    """T(R) ⊆ Z (Lemma 12) — also covered per-module; here on Fig. 2
    via the symbolic engine (non-FCR case)."""

    def test_fig2_symbolic_visible_inside_z(self):
        cpds = fig2_cpds()
        z = compute_z(cpds)
        engine = SymbolicReach(cpds)
        engine.ensure_level(4)
        assert engine.visible_up_to() <= z


class TestLemma16FiniteShallowReach:
    """If R(Q×Σ≤1) is finite then R(s) is finite for any single s."""

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_deep_start_stays_finite(self, data):
        pds = PDS(initial_shared=0, shared_states=SHARED, alphabet=SYMBOLS)
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            read = data.draw(st.sampled_from(["a", "b"]))
            write = data.draw(
                st.sampled_from([(), ("a",), ("b",), ("a", "b"), ("b", "a")])
            )
            pds.rule(
                data.draw(st.sampled_from(SHARED)), read,
                data.draw(st.sampled_from(SHARED)), write,
            )
        assume(shallow_configs_psa(pds).language_is_finite())
        # Lemma 16: even from a size-4 stack, explicit search terminates.
        stack = tuple(data.draw(st.lists(st.sampled_from(SYMBOLS), min_size=4, max_size=4)))
        start = PDSState(data.draw(st.sampled_from(SHARED)), stack)
        post_star_explicit(pds, start, max_states=100_000)  # must not raise


class TestTheorem17FcrSoundness:
    """If the per-thread premise holds, every Rk is finite: the explicit
    engine never trips its guard on FCR-positive random CPDS."""

    @settings(max_examples=40, deadline=None)
    @given(random_cpds())
    def test_fcr_implies_explicit_termination(self, cpds):
        assume(check_fcr(cpds).holds)
        engine = ExplicitReach(cpds, max_states_per_context=100_000, track_traces=False)
        engine.ensure_level(4)  # must not raise ContextExplosionError


class TestWitnessSoundness:
    """Counterexample traces replay under the real semantics."""

    def test_fig1_traces_replay(self):
        cpds = fig1_cpds()
        engine = ExplicitReach(cpds)
        engine.ensure_level(5)
        for state in engine.states_up_to(5):
            validate_trace(cpds, engine.trace(state))

    def test_validator_rejects_wrong_start(self):
        from repro.reach import Trace

        with pytest.raises(ValueError):
            validate_trace(fig1_cpds(), Trace(fig2_cpds().initial_state(), ()))

    def test_validator_rejects_forged_step(self):
        from repro.reach import Trace, TraceStep
        from repro.cpds import GlobalState

        cpds = fig1_cpds()
        action = cpds.thread(0).actions[0]  # f1
        forged = GlobalState(2, ((2,), (4,)))  # wrong shared state
        trace = Trace(cpds.initial_state(), (TraceStep(0, action, forged),))
        with pytest.raises(ValueError):
            validate_trace(cpds, trace)

    @settings(max_examples=30, deadline=None)
    @given(random_cpds())
    def test_random_traces_replay(self, cpds):
        engine = ExplicitReach(cpds, max_states_per_context=2000)
        try:
            engine.ensure_level(3)
        except ContextExplosionError:
            assume(False)
        for state in engine.states_up_to(3):
            validate_trace(cpds, engine.trace(state))


class TestEngineAgreement:
    """Explicit and symbolic engines compute the same T(Rk) (App. E)."""

    @settings(max_examples=25, deadline=None)
    @given(random_cpds())
    def test_visible_levels_agree(self, cpds):
        explicit = ExplicitReach(cpds, max_states_per_context=2000, track_traces=False)
        try:
            explicit.ensure_level(3)
        except ContextExplosionError:
            assume(False)
        symbolic = SymbolicReach(cpds)
        symbolic.ensure_level(3)
        for k in range(4):
            assert symbolic.visible_up_to(k) == explicit.visible_up_to(k), f"k={k}"
