"""Tests for the tuple encoder and the BDD-backed visible-state set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import TupleEncoder, VisibleSetBDD


class TestTupleEncoder:
    def test_round_trip_via_membership(self):
        encoder = TupleEncoder(2)
        assignment = encoder.assignment(("q0", "a"))
        assert encoder.manager.evaluate(encoder.cube(("q0", "a")), assignment)

    def test_distinct_tuples_distinct_cubes(self):
        encoder = TupleEncoder(2)
        assert encoder.cube(("q0", "a")) != encoder.cube(("q0", "b"))
        assert encoder.cube(("q0", "a")) != encoder.cube(("q1", "a"))

    def test_unknown_value_without_register(self):
        encoder = TupleEncoder(1)
        assert encoder.assignment(("never-seen",), register=False) is None

    def test_arity_checked(self):
        encoder = TupleEncoder(2)
        with pytest.raises(ValueError):
            encoder.assignment(("only-one",))

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            TupleEncoder(0)

    def test_none_is_a_legal_value(self):
        # EMPTY tops are None in visible states; they must encode fine.
        encoder = TupleEncoder(2)
        cube = encoder.cube((None, "a"))
        assert encoder.manager.evaluate(cube, encoder.assignment((None, "a")))


class TestVisibleSetBDD:
    def test_add_and_membership(self):
        store = VisibleSetBDD.for_arity(2)
        assert store.add((0, "a"))
        assert (0, "a") in store
        assert (0, "b") not in store
        assert ("zzz", "a") not in store

    def test_add_is_idempotent(self):
        store = VisibleSetBDD.for_arity(2)
        assert store.add((0, "a"))
        assert not store.add((0, "a"))
        assert len(store) == 1

    def test_size_matches_satcount(self):
        store = VisibleSetBDD.for_arity(2)
        store.update([(0, "a"), (0, "b"), (1, "a")])
        assert len(store) == 3
        assert store.satcount() == 3

    def test_equality_by_canonicity(self):
        encoder = TupleEncoder(2)
        left = VisibleSetBDD(encoder)
        right = VisibleSetBDD(encoder)
        left.update([(0, "a"), (1, "b")])
        right.update([(1, "b"), (0, "a")])  # insertion order irrelevant
        assert left.equals(right)
        right.add((0, "b"))
        assert not left.equals(right)

    def test_subset(self):
        encoder = TupleEncoder(1)
        small = VisibleSetBDD(encoder)
        big = VisibleSetBDD(encoder)
        small.update([("x",)])
        big.update([("x",), ("y",)])
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_union(self):
        encoder = TupleEncoder(1)
        left = VisibleSetBDD(encoder)
        right = VisibleSetBDD(encoder)
        left.add(("x",))
        right.add(("y",))
        combined = left.union(right)
        assert set(combined) == {("x",), ("y",)}
        assert len(combined) == 2

    def test_iteration(self):
        store = VisibleSetBDD.for_arity(2)
        members = {(0, "a"), (1, "b"), (1, "a")}
        store.update(members)
        assert set(store) == members

    def test_cross_encoder_operations_rejected(self):
        left = VisibleSetBDD.for_arity(1)
        right = VisibleSetBDD.for_arity(1)
        with pytest.raises(ValueError):
            left.equals(right)


class TestWithVisibleStates:
    def test_stores_fig1_visible_states(self):
        from repro.models import fig1_cpds
        from repro.reach import ExplicitReach

        engine = ExplicitReach(fig1_cpds(), track_traces=False)
        engine.ensure_level(6)
        store = VisibleSetBDD.for_arity(3)  # (shared, top1, top2)
        reference = set()
        for visible in engine.visible_up_to():
            row = (visible.shared, *visible.tops)
            store.add(row)
            reference.add(row)
        assert len(store) == len(reference)
        assert set(store) == reference


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(["a", "b", "c", None])),
        max_size=12,
    ),
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from(["a", "b", "c", None])),
        max_size=12,
    ),
)
def test_store_behaves_like_a_set(left_items, right_items):
    encoder = TupleEncoder(2)
    left = VisibleSetBDD(encoder)
    right = VisibleSetBDD(encoder)
    left.update(left_items)
    right.update(right_items)
    left_set, right_set = set(left_items), set(right_items)
    assert len(left) == len(left_set)
    assert set(left) == left_set
    assert left.equals(right) == (left_set == right_set)
    assert left.issubset(right) == (left_set <= right_set)
    assert set(left.union(right)) == (left_set | right_set)
