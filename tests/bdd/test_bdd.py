"""BDD manager tests: semantics validated against brute-force truth tables."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import FALSE, TRUE, BDDManager


def truth_table(manager, node, n_vars):
    return tuple(
        manager.evaluate(node, dict(enumerate(bits)))
        for bits in itertools.product((False, True), repeat=n_vars)
    )


class TestBasics:
    def test_terminals(self):
        manager = BDDManager()
        assert manager.evaluate(TRUE, {}) is True
        assert manager.evaluate(FALSE, {}) is False

    def test_var(self):
        manager = BDDManager()
        x = manager.var(0)
        assert manager.evaluate(x, {0: True})
        assert not manager.evaluate(x, {0: False})

    def test_var_is_canonical(self):
        manager = BDDManager()
        assert manager.var(3) == manager.var(3)

    def test_negative_var_rejected(self):
        with pytest.raises(ValueError):
            BDDManager().var(-1)

    def test_reduction_eliminates_redundant_test(self):
        manager = BDDManager()
        x = manager.var(0)
        # x ∨ ¬x ≡ 1 collapses to the terminal.
        assert manager.lor(x, manager.lnot(x)) == TRUE
        assert manager.land(x, manager.lnot(x)) == FALSE


class TestConnectives:
    @pytest.fixture
    def manager(self):
        return BDDManager()

    def test_and_or_not_xor(self, manager):
        x, y = manager.var(0), manager.var(1)
        cases = {
            manager.land(x, y): lambda a, b: a and b,
            manager.lor(x, y): lambda a, b: a or b,
            manager.lxor(x, y): lambda a, b: a != b,
            manager.implies(x, y): lambda a, b: (not a) or b,
            manager.equiv(x, y): lambda a, b: a == b,
        }
        for node, fn in cases.items():
            for a in (False, True):
                for b in (False, True):
                    assert manager.evaluate(node, {0: a, 1: b}) == fn(a, b)

    def test_conjoin_disjoin(self, manager):
        xs = [manager.var(i) for i in range(3)]
        allx = manager.conjoin(xs)
        anyx = manager.disjoin(xs)
        assert manager.evaluate(allx, {0: True, 1: True, 2: True})
        assert not manager.evaluate(allx, {0: True, 1: False, 2: True})
        assert manager.evaluate(anyx, {0: False, 1: False, 2: True})
        assert not manager.evaluate(anyx, {0: False, 1: False, 2: False})

    def test_cube(self, manager):
        cube = manager.cube({0: True, 2: False})
        assert manager.evaluate(cube, {0: True, 1: False, 2: False})
        assert manager.evaluate(cube, {0: True, 1: True, 2: False})
        assert not manager.evaluate(cube, {0: False, 1: True, 2: False})
        assert not manager.evaluate(cube, {0: True, 1: True, 2: True})


class TestQuantifiersAndSupport:
    def test_restrict(self):
        manager = BDDManager()
        x, y = manager.var(0), manager.var(1)
        f = manager.land(x, y)
        assert manager.restrict(f, 0, True) == y
        assert manager.restrict(f, 0, False) == FALSE

    def test_exists(self):
        manager = BDDManager()
        x, y = manager.var(0), manager.var(1)
        f = manager.land(x, y)
        assert manager.exists(f, 0) == y
        assert manager.exists_many(f, [0, 1]) == TRUE

    def test_support(self):
        manager = BDDManager()
        x, z = manager.var(0), manager.var(2)
        f = manager.lor(x, z)
        assert manager.support(f) == frozenset({0, 2})
        assert manager.support(TRUE) == frozenset()


class TestSatcount:
    def test_simple_counts(self):
        manager = BDDManager()
        x, y = manager.var(0), manager.var(1)
        assert manager.satcount(TRUE, 2) == 4
        assert manager.satcount(FALSE, 2) == 0
        assert manager.satcount(x, 2) == 2
        assert manager.satcount(manager.land(x, y), 2) == 1
        assert manager.satcount(manager.lor(x, y), 2) == 3
        assert manager.satcount(manager.lxor(x, y), 2) == 2

    def test_skipped_levels_weighted(self):
        manager = BDDManager()
        z = manager.var(3)
        assert manager.satcount(z, 4) == 8

    def test_support_check(self):
        manager = BDDManager()
        with pytest.raises(ValueError):
            manager.satcount(manager.var(5), 3)


# ---------------------------------------------------------------------------
# Property tests: random formulas vs brute-force truth tables.
# ---------------------------------------------------------------------------

N_VARS = 4


def formulas():
    leaves = st.sampled_from(["x0", "x1", "x2", "x3", "T", "F"])
    return st.recursive(
        leaves,
        lambda children: st.tuples(
            st.sampled_from(["and", "or", "xor", "not", "ite"]),
            children,
            children,
            children,
        ),
        max_leaves=14,
    )


def build(manager, formula):
    if formula == "T":
        return TRUE
    if formula == "F":
        return FALSE
    if isinstance(formula, str):
        return manager.var(int(formula[1]))
    op, a, b, c = formula
    fa, fb, fc = (build(manager, f) for f in (a, b, c))
    if op == "and":
        return manager.land(fa, fb)
    if op == "or":
        return manager.lor(fa, fb)
    if op == "xor":
        return manager.lxor(fa, fb)
    if op == "not":
        return manager.lnot(fa)
    return manager.ite(fa, fb, fc)


def brute(formula, bits):
    if formula == "T":
        return True
    if formula == "F":
        return False
    if isinstance(formula, str):
        return bits[int(formula[1])]
    op, a, b, c = formula
    if op == "and":
        return brute(a, bits) and brute(b, bits)
    if op == "or":
        return brute(a, bits) or brute(b, bits)
    if op == "xor":
        return brute(a, bits) != brute(b, bits)
    if op == "not":
        return not brute(a, bits)
    return brute(b, bits) if brute(a, bits) else brute(c, bits)


@settings(max_examples=120, deadline=None)
@given(formulas())
def test_bdd_matches_brute_force(formula):
    manager = BDDManager()
    node = build(manager, formula)
    for bits in itertools.product((False, True), repeat=N_VARS):
        assert manager.evaluate(node, dict(enumerate(bits))) == brute(formula, bits)


@settings(max_examples=80, deadline=None)
@given(formulas(), formulas())
def test_canonicity_equal_functions_share_roots(f, g):
    manager = BDDManager()
    nf, ng = build(manager, f), build(manager, g)
    same_function = all(
        brute(f, bits) == brute(g, bits)
        for bits in itertools.product((False, True), repeat=N_VARS)
    )
    assert (nf == ng) == same_function


@settings(max_examples=80, deadline=None)
@given(formulas())
def test_satcount_matches_enumeration(formula):
    manager = BDDManager()
    node = build(manager, formula)
    expected = sum(
        brute(formula, bits)
        for bits in itertools.product((False, True), repeat=N_VARS)
    )
    assert manager.satcount(node, N_VARS) == expected
