"""Tests for the seeded random CPDS generator."""

import pytest

from repro.models import RandomSpec, random_cpds, random_cpds_batch


class TestDeterminism:
    def test_same_seed_same_system(self):
        one = random_cpds(42)
        two = random_cpds(42)
        assert one.initial_state() == two.initial_state()
        for a, b in zip(one.threads, two.threads):
            assert a.actions == b.actions

    def test_different_seeds_differ_somewhere(self):
        batch = random_cpds_batch(10)
        actions = {tuple(t.actions for t in cpds.threads) for cpds in batch}
        assert len(actions) > 1


class TestShape:
    def test_spec_respected(self):
        spec = RandomSpec(n_threads=3, n_shared=4, n_symbols=2, rules_per_thread=5)
        cpds = random_cpds(0, spec)
        assert cpds.n_threads == 3
        assert cpds.shared_states <= frozenset(range(4))
        for pds in cpds.threads:
            assert len(pds.actions) == 5

    def test_alphabets_disjoint_across_threads(self):
        cpds = random_cpds(1)
        assert not (cpds.alphabet(0) & cpds.alphabet(1))

    def test_generated_systems_validate(self):
        for cpds in random_cpds_batch(20):
            cpds.validate()

    def test_no_pushes_when_bias_zero(self):
        from repro.pds import ActionKind

        spec = RandomSpec(push_bias=0.0, empty_read_bias=0.0, rules_per_thread=10)
        cpds = random_cpds(5, spec)
        for pds in cpds.threads:
            assert all(a.kind is not ActionKind.PUSH for a in pds.actions)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            RandomSpec(n_threads=0)
        with pytest.raises(ValueError):
            RandomSpec(push_bias=1.5)


class TestUsableByEngines:
    def test_symbolic_engine_runs_on_corpus(self):
        from repro.reach import SymbolicReach

        for cpds in random_cpds_batch(5):
            engine = SymbolicReach(cpds)
            engine.ensure_level(2)
            assert engine.visible_up_to()
