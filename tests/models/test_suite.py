"""The Table 2 suite as a test: every row's verdict and FCR status.

This is the integration heart of the reproduction — each benchmark must
produce the paper's qualitative result (safe/unsafe, FCR holds/fails)
through the full Cuba front-end.
"""

import pytest

from repro.core import Verdict
from repro.cuba import Cuba, check_fcr
from repro.models import runnable_benchmarks

LIGHT_ROWS = [
    b for b in runnable_benchmarks() if b.name not in ("4/BST-Insert [2+2]",)
]
HEAVY_ROWS = [
    b for b in runnable_benchmarks() if b.name in ("4/BST-Insert [2+2]",)
]


@pytest.mark.parametrize("bench", LIGHT_ROWS, ids=lambda b: b.name)
def test_table2_row(bench):
    cpds, prop = bench.build()
    cpds.validate()
    assert check_fcr(cpds).holds == bench.fcr, "FCR status mismatch"
    report = Cuba(cpds, prop).verify(max_rounds=bench.max_rounds)
    expected = Verdict.SAFE if bench.safe else Verdict.UNSAFE
    assert report.verdict is expected, report.result.message


@pytest.mark.parametrize("bench", HEAVY_ROWS, ids=lambda b: b.name)
def test_table2_heavy_row(bench):
    cpds, prop = bench.build()
    report = Cuba(cpds, prop).verify(max_rounds=bench.max_rounds)
    expected = Verdict.SAFE if bench.safe else Verdict.UNSAFE
    assert report.verdict is expected


class TestRegistryShape:
    def test_covers_all_paper_rows(self):
        from repro.models import TABLE2

        rows = {b.row for b in TABLE2}
        assert rows == {
            "1/Bluetooth-1", "2/Bluetooth-2", "3/Bluetooth-3",
            "4/BST-Insert", "5/FileCrawler", "6/K-Induction",
            "7/Proc-2", "8/Stefan-1", "9/Dekker",
        }
        assert len(TABLE2) == 19  # every thread instantiation of Table 2

    def test_oom_row_marked(self):
        from repro.models import TABLE2

        skipped = [b for b in TABLE2 if b.skip_run]
        assert [b.name for b in skipped] == ["8/Stefan-1 [8]"]

    def test_fig5_rows_subset(self):
        from repro.models import fig5_benchmarks

        assert all(not b.skip_run for b in fig5_benchmarks())
        assert len(fig5_benchmarks()) == 14


class TestUnsafeBounds:
    """Bug-revealing context bounds stay small (Table 2: 3–4)."""

    @pytest.mark.parametrize("version", [1, 2])
    def test_bluetooth_bug_bound(self, version):
        from repro.models import bluetooth

        compiled = bluetooth(version, 1, 1)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=15)
        assert report.verdict is Verdict.UNSAFE
        assert report.result.bound <= 4
        assert report.result.trace is not None

    def test_bluetooth_v3_has_no_bug_at_any_bound(self):
        from repro.models import bluetooth

        compiled = bluetooth(3, 1, 1)
        report = Cuba(compiled.cpds, compiled.prop).verify(max_rounds=15)
        assert report.verdict is Verdict.SAFE


class TestConvergenceBounds:
    """Collapse bounds kmax stay small (the paper's headline insight)."""

    def test_all_safe_rows_converge_below_10(self):
        for benchmark in LIGHT_ROWS:
            if not benchmark.safe:
                continue
            cpds, prop = benchmark.build()
            report = Cuba(cpds, prop).verify(max_rounds=benchmark.max_rounds)
            bound = report.trk_bound if report.trk_bound is not None else report.rk_bound
            assert bound is not None and bound <= 10, benchmark.name

    def test_stefan_matches_paper_kmax_exactly(self):
        from repro.models import stefan

        for n, expected in ((2, 2), (4, 4)):
            cpds, prop = stefan(n)
            report = Cuba(cpds, prop).verify(max_rounds=10)
            assert report.trk_bound == expected, f"stefan-{n}"
