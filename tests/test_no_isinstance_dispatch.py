"""Grep-enforced API boundary: the verifier, service, and CLI must
dispatch on the lane registry, never on concrete engine classes.

An ``isinstance(engine, ExplicitReach)`` in any of these layers means a
new lane needs edits outside its own module — exactly what the registry
exists to prevent.  This test reads the source files, so a regression
fails loudly with the offending line.
"""

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

DISPATCH_FILES = sorted(
    [SRC / "cuba" / "verifier.py", SRC / "cli.py", *(SRC / "service").glob("*.py")]
)

FORBIDDEN = re.compile(r"isinstance\s*\([^)]*,\s*(ExplicitReach|SymbolicReach|WubaReach)")


@pytest.mark.parametrize("path", DISPATCH_FILES, ids=lambda p: p.name)
def test_no_concrete_engine_isinstance(path):
    offenders = [
        f"{path.name}:{lineno}: {line.strip()}"
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if FORBIDDEN.search(line)
    ]
    assert not offenders, (
        "engine dispatch must go through repro.reach.registry, found:\n"
        + "\n".join(offenders)
    )


def test_dispatch_files_exist():
    # Guard the guard: if these files move, the parametrization above
    # silently shrinks — fail instead.
    assert len(DISPATCH_FILES) >= 6
    for path in DISPATCH_FILES:
        assert path.is_file(), path
